"""Cycle-level pipeline models: out-of-order and in-order cores with SMT.

One :class:`PipelineCore` advances cycle by cycle:

* **fetch/dispatch** — up to ``width`` instructions per cycle enter the
  back-end, shared round-robin among the resident hardware threads (the
  paper's SMT fetch policy [24]); a thread stalls on branch mispredictions
  (front-end redirect) and instruction-cache misses;
* **out-of-order back-end** — each thread owns a statically partitioned ROB
  slice; a dispatched instruction issues once its register producer has
  completed and a functional unit of its class is free, so independent
  instructions (including loads) overlap — memory-level parallelism emerges
  naturally from the window;
* **in-order back-end** (small cores) — dispatch blocks until the
  instruction's producer has completed (stall-on-use) and miss latencies
  serialize; with two hardware threads the core switches to the other
  thread's instructions while one is stalled (fine-grained MT);
* **commit** — in order per thread, bounded by width.

Memory latencies come from the shared :class:`~repro.memory.hierarchy.
MemoryHierarchy`, so co-running threads and other cores contend for L2/LLC
capacity, DRAM banks and the off-chip bus with real state.

Two fast paths keep this tier usable for cross-validation sweeps without
changing a single reported number:

* the per-cycle work loops bind hot attributes to locals, the functional-
  unit issue probe hops a path-compressed next-free-cycle skip list instead
  of scanning cycle by cycle, and producer completion times live in a flat
  ring buffer;
* **idle-cycle skipping** (:meth:`PipelineCore.next_event_cycle`): when no
  thread can commit, dispatch or finish before some cycle T, the clock
  advances straight to T.  The skip is *exact* — between the current cycle
  and T the naive loop would not change any architectural or statistical
  state — so fast-forwarded runs are bit-identical to naive ones (a golden
  test asserts this across core types and fetch policies).
"""

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.memory.hierarchy import MemoryHierarchy
from repro.microarch.branch import predictor_for_core
from repro.microarch.config import CoreConfig
from repro.sim.kernel import FU_CLASSES, TraceArrays, active_kernel, build_trace_arrays
from repro.sim.results import CoreSimStats
from repro.workloads.tracegen import EXEC_LATENCY, TraceInstruction

#: Ring size for producer completion-time tracking (max dependence distance).
_DEP_WINDOW = 64
_DEP_MASK = _DEP_WINDOW - 1

#: Functional-unit class per instruction kind (int ops and branches share
#: the integer ALUs).
_FU_CLASS = {
    "int": "int",
    "branch": "int",
    "load": "ldst",
    "store": "ldst",
    "muldiv": "muldiv",
    "fp": "fp",
}

#: Issue-slot tables are pruned once they hold this many distinct cycles.
_FU_PRUNE_LIMIT = 4096

#: Sentinel for "no event will ever happen" (all threads drained).
_NEVER = (1 << 63) - 1


class SimThread:
    """Architectural state of one hardware thread on a core."""

    def __init__(
        self,
        thread_id: int,
        trace: Sequence[TraceInstruction],
        warmup_instructions: int = 0,
    ):
        self.thread_id = thread_id
        self.trace = trace
        self.trace_len = len(trace)
        self.cursor = 0
        self.warmup_instructions = min(warmup_instructions, max(0, len(trace) - 1))
        self.stats = CoreSimStats()
        #: Per-thread branch predictor (SMT threads keep private history;
        #: table sharing/aliasing between contexts is not modelled).
        self.predictor = None  # installed by the owning PipelineCore
        self._warm_snapshot: Optional[Tuple[int, int, int, Dict[str, int]]] = None
        #: Completion cycles of the last _DEP_WINDOW dispatched instructions,
        #: as a flat ring buffer (O(1) lookup at any dependence distance).
        self._comp_ring: List[int] = [0] * _DEP_WINDOW
        self._comp_count = 0
        #: In-flight (program-ordered) completion times awaiting commit.
        self.rob: Deque[int] = deque()
        self.fetch_stalled_until = 0
        self.last_fetch_line = -1
        self.done_cycle: Optional[int] = None
        #: Batched per-field trace arrays, installed by the owning core when
        #: the numpy kernel is active (see :mod:`repro.sim.kernel`).
        self._k: Optional[TraceArrays] = None

    @property
    def finished(self) -> bool:
        return self.cursor >= self.trace_len and not self.rob

    def maybe_snapshot(self, now: int) -> None:
        """Record the warm-up boundary so cold misses are excluded."""
        if self._warm_snapshot is None and self.cursor >= self.warmup_instructions:
            self.stats.cycles = now  # temporary marker; finalized at drain
            self._warm_snapshot = (
                self.stats.instructions,
                now,
                self.stats.branch_mispredicts,
                dict(self.stats.level_hits),
            )

    def finalize_stats(self, done_cycle: int) -> None:
        """Convert cumulative counters into measured-region statistics."""
        if self._warm_snapshot is None:
            self.stats.cycles = done_cycle
            return
        instr0, cycle0, mispred0, levels0 = self._warm_snapshot
        self.stats.instructions -= instr0
        self.stats.cycles = max(1, done_cycle - cycle0)
        self.stats.branch_mispredicts -= mispred0
        for level, count in levels0.items():
            self.stats.level_hits[level] = self.stats.level_hits[level] - count

    def producer_completion(self, dep_distance: int, now: int) -> int:
        """Cycle at which this instruction's register input becomes ready."""
        if (
            dep_distance <= 0
            or dep_distance > self._comp_count
            or dep_distance > _DEP_WINDOW
        ):
            return now
        c = self._comp_ring[(self._comp_count - dep_distance) & _DEP_MASK]
        return c if c > now else now

    def record_completion(self, completion: int) -> None:
        """Append one dispatched instruction's completion cycle."""
        count = self._comp_count
        self._comp_ring[count & _DEP_MASK] = completion
        self._comp_count = count + 1

    def reset_pipeline_state(self, now: int) -> None:
        """Drop in-flight state (sampled simulation window boundaries).

        Clears the ROB and dependence ring as if the pipeline drained; the
        architectural warm state (predictor, cache contents via the shared
        hierarchy, cursor position) is untouched.
        """
        self.rob.clear()
        # In place: the batched kernel prebinds the ring object (_kctx).
        self._comp_ring[:] = [0] * _DEP_WINDOW
        self._comp_count = 0
        if self.fetch_stalled_until < now:
            self.fetch_stalled_until = now


class PipelineCore:
    """One core (out-of-order or in-order) executing up to N SMT threads."""

    def __init__(
        self,
        core: CoreConfig,
        core_index: int,
        hierarchy: MemoryHierarchy,
        traces: Sequence[Sequence[TraceInstruction]],
        warmup_instructions: int = 0,
        fetch_policy: str = "roundrobin",
        kernel: Optional[str] = None,
    ):
        if fetch_policy not in ("roundrobin", "icount"):
            raise ValueError(
                f"fetch_policy must be 'roundrobin' or 'icount', "
                f"got {fetch_policy!r}"
            )
        self.fetch_policy = fetch_policy
        if not traces:
            raise ValueError("need at least one thread trace")
        if len(traces) > core.max_smt_contexts:
            raise ValueError(
                f"{core.name} core supports {core.max_smt_contexts} hardware "
                f"threads, got {len(traces)}"
            )
        self.core = core
        self.core_index = core_index
        self.hierarchy = hierarchy
        self.threads = [
            SimThread(i, t, warmup_instructions) for i, t in enumerate(traces)
        ]
        for thread in self.threads:
            thread.predictor = predictor_for_core(core.is_out_of_order)
        self.cycle = 0
        self._n_threads = len(self.threads)
        self._is_ooo = core.is_out_of_order
        self._width = core.width
        self._freq = core.frequency_ghz
        #: Instruction fetches dedup at the core's own L1I line granularity.
        self._l1i_line_bytes = core.l1i.line_bytes
        self._rob_share = (
            core.rob_size // len(self.threads) if core.is_out_of_order else core.width * 2
        )
        fu = core.functional_units
        #: Per-cycle issue-slot usage per functional-unit class.  Issue picks
        #: the first cycle >= ready with a free slot (hole-filling, so an
        #: instruction that becomes ready early is not blocked behind
        #: reservations made for later-ready instructions — proper
        #: out-of-order issue).
        self._fu_units: Dict[str, int] = {
            "int": fu.int_alu,
            "ldst": fu.load_store,
            "muldiv": fu.mul_div,
            "fp": fu.fp,
        }
        self._fu_busy: Dict[str, Dict[int, int]] = {k: {} for k in self._fu_units}
        #: Next-free-cycle skip list per class: for a saturated cycle ``c``,
        #: ``_fu_next[cls][c]`` points at the next cycle that might still
        #: have a free slot (path-compressed as probes walk it).
        self._fu_next: Dict[str, Dict[int, int]] = {k: {} for k in self._fu_units}
        #: Which stepping kernel this core runs ("numpy" or "scalar"); both
        #: are bit-identical (golden-tested).  See :mod:`repro.sim.kernel`.
        self.kernel = active_kernel(kernel)
        if self.kernel == "numpy":
            self._install_numpy_kernel()

    def _install_numpy_kernel(self) -> None:
        """Precompute batched trace arrays and bind the fused step loop.

        The string-keyed ``_fu_units``/``_fu_busy``/``_fu_next`` dicts stay
        canonical (unit tests and :meth:`_prune_fu_state` use them); the
        code-indexed lists below alias the *same* dict objects, so both
        kernels share one set of issue-slot tables and pruning keeps
        working in place.
        """
        caches = self.hierarchy.core_caches[self.core_index]
        l1d = caches.l1d
        self._l1d = l1d
        for thread in self.threads:
            k = build_trace_arrays(
                thread.trace, self._l1i_line_bytes, l1d._line_bytes, l1d._num_sets
            )
            thread._k = k
            # Per-thread hot bindings for the fused loops, packed into one
            # tuple (single unpack per thread entry).  Every object here
            # keeps its identity for the thread's lifetime — including the
            # completion ring, which reset_pipeline_state clears in place.
            thread._kctx = (
                k.exec_lat,
                k.fu_code,
                k.mem_code,
                k.pc,
                k.fetch_line,
                k.address,
                k.l1d_set,
                k.l1d_tag,
                k.dep,
                k.taken,
                thread.stats,
                thread.stats.level_hits,
                thread._comp_ring,
                thread.rob.append,
                thread.predictor.update,
                thread.warmup_instructions,
            )
        self._fu_units_by_code = [self._fu_units[c] for c in FU_CLASSES]
        self._fu_busy_by_code = [self._fu_busy[c] for c in FU_CLASSES]
        self._fu_next_by_code = [self._fu_next[c] for c in FU_CLASSES]
        #: With prefetchers installed every data access (hits included) must
        #: flow through the hierarchy so the prefetcher observes it; without
        #: them the L1D lookup is inlined against precomputed set/tag.
        self._inline_l1 = not self.hierarchy._has_prefetchers
        #: Same expression the scalar path evaluates per L1 load hit
        #: (``int(result.latency_ns * freq)``), computed once.
        self._l1_load_cycles = int(
            self.hierarchy._d_l1[self.core_index].latency_ns * self._freq
        )
        #: Hot bindings for :meth:`_step_numpy`, packed into one tuple so
        #: each step pays a single attribute load + unpack instead of ~16
        #: attribute chains.  Everything here is stable for the core's
        #: lifetime (the FU tables are compacted in place, never replaced).
        hierarchy = self.hierarchy
        self._step_ctx = (
            hierarchy.instruction_access,
            hierarchy.data_access,
            hierarchy.data_l1_miss,
            hierarchy.demand_counts,
            self._inline_l1,
            l1d,
            l1d._sets,
            l1d.stats,
            l1d._assoc,
            l1d._num_sets,
            l1d._line_bytes,
            self._l1_load_cycles,
            self._fu_units_by_code,
            self._fu_busy_by_code,
            self._fu_next_by_code,
            self.core.frontend_depth,
        )
        self.step = self._step_numpy  # type: ignore[method-assign]

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    def _now_ns(self) -> float:
        return self.cycle / self._freq

    def _fu_class(self, kind: str) -> str:
        return _FU_CLASS.get(kind, "int")

    def _acquire_fu(self, kind: str, ready: int) -> int:
        """Earliest cycle >= ``ready`` with a free unit of this class."""
        cls = _FU_CLASS[kind]
        units = self._fu_units[cls]
        busy = self._fu_busy[cls]
        if len(busy) > _FU_PRUNE_LIMIT:
            self._prune_fu_state()
        t = ready
        used = busy.get(t, 0)
        if used >= units:
            # Saturated: hop the next-free skip list (union-find style with
            # path compression) instead of probing one cycle at a time.
            nxt = self._fu_next[cls]
            path = []
            while used >= units:
                path.append(t)
                t = nxt.get(t, t + 1)
                used = busy.get(t, 0)
            for c in path:
                nxt[c] = t
        busy[t] = used + 1
        return t

    def _prune_fu_state(self) -> None:
        """Drop issue-slot bookkeeping for cycles already in the past.

        Triggered by table *size* (not a wall-cycle stride), so long memory
        stalls cannot accumulate unbounded state; the tables are compacted
        in place.  Reservations at cycles < ``self.cycle`` can never be
        probed again (issue ready times are always >= the current cycle),
        so dropping them never changes an issue decision.
        """
        now = self.cycle
        for cls, busy in self._fu_busy.items():
            if len(busy) <= _FU_PRUNE_LIMIT // 2:
                continue
            kept = {c: n for c, n in busy.items() if c >= now}
            busy.clear()
            busy.update(kept)
            nxt = self._fu_next[cls]
            kept_next = {c: t for c, t in nxt.items() if c >= now}
            nxt.clear()
            nxt.update(kept_next)

    def _fetch_line(self, thread: SimThread, instr: TraceInstruction) -> None:
        """Model instruction-cache behaviour at cache-line granularity."""
        line = instr.pc // self._l1i_line_bytes
        if line == thread.last_fetch_line:
            return
        thread.last_fetch_line = line
        self._fetch_miss(thread, instr.pc)

    def _fetch_miss(self, thread: SimThread, pc: int) -> None:
        """Charge the i-cache for a new fetch line (slow path)."""
        result = self.hierarchy.instruction_access(
            self.core_index, pc, self.cycle / self._freq
        )
        if result.level != "l1":
            # The front end runs ahead and next-line-prefetches sequential
            # code, hiding most of an i-miss behind the fetch buffer; only a
            # fraction of the latency reaches dispatch.
            delay = int(result.latency_ns * self._freq * 0.4) + 1
            stalled = self.cycle + delay
            if stalled > thread.fetch_stalled_until:
                thread.fetch_stalled_until = stalled

    # ------------------------------------------------------------------ #
    # one cycle                                                           #
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Advance the core by one cycle (commit, then dispatch)."""
        now = self.cycle
        width = self._width
        threads = self.threads

        # Commit: in order per thread, up to `width` per thread; a thread
        # whose trace and ROB both drained records its finish cycle.
        for thread in threads:
            rob = thread.rob
            if rob:
                retired = 0
                while retired < width and rob and rob[0] <= now:
                    rob.popleft()
                    retired += 1
            if (
                not rob
                and thread.done_cycle is None
                and thread.cursor >= thread.trace_len
            ):
                thread.done_cycle = now
                thread.finalize_stats(now)

        # Dispatch: share the core width across threads.  Round-robin
        # rotates priority cycle by cycle [24]; ICOUNT [31] gives the
        # thread with the fewest in-flight instructions first pick, which
        # keeps fast-moving threads moving.
        budget = width
        n = self._n_threads
        if n == 1:
            order = threads
        elif self.fetch_policy == "icount":
            order = sorted(threads, key=_rob_depth)
        else:
            start = now % n
            order = threads[start:] + threads[:start]
        rob_share = self._rob_share
        is_ooo = self._is_ooo
        dispatch = self._dispatch
        for thread in order:
            if budget <= 0:
                break
            rob = thread.rob
            trace = thread.trace
            tlen = thread.trace_len
            while (
                budget > 0
                and thread.cursor < tlen
                and now >= thread.fetch_stalled_until
                and len(rob) < rob_share
            ):
                if (
                    not is_ooo
                    and thread.producer_completion(
                        trace[thread.cursor].dep_distance, now
                    )
                    > now
                ):
                    # Stall-on-use: the next instruction's input is not ready.
                    break
                dispatch(thread, now)
                budget -= 1
        self.cycle = now + 1

    def _can_dispatch(self, thread: SimThread, now: int) -> bool:
        if thread.cursor >= thread.trace_len:
            return False
        if now < thread.fetch_stalled_until:
            return False
        if len(thread.rob) >= self._rob_share:
            return False
        if not self._is_ooo:
            # Stall-on-use: the next instruction must have its input ready.
            instr = thread.trace[thread.cursor]
            if thread.producer_completion(instr.dep_distance, now) > now:
                return False
        return True

    def _dispatch(self, thread: SimThread, now: int) -> None:
        cursor = thread.cursor
        instr = thread.trace[cursor]
        thread.cursor = cursor + 1
        line = instr.pc // self._l1i_line_bytes
        if line != thread.last_fetch_line:
            thread.last_fetch_line = line
            self._fetch_miss(thread, instr.pc)

        kind = instr.kind
        ready = thread.producer_completion(instr.dep_distance, now)
        issue = self._acquire_fu(kind, ready)
        latency = EXEC_LATENCY[kind]
        stats = thread.stats
        if kind == "load" or kind == "store":
            freq = self._freq
            result = self.hierarchy.data_access(
                self.core_index,
                instr.address,
                issue / freq,
                is_write=(kind == "store"),
                pc=instr.pc,
            )
            level = result.level
            stats.level_hits[level] = stats.level_hits.get(level, 0) + 1
            mem_cycles = (
                int(result.latency_ns * freq)
                if kind == "load"
                else 1  # stores retire through the write buffer
            )
            total = latency + mem_cycles
            completion = issue + (total if total > 1 else 1)
        else:
            completion = issue + latency

        if kind == "branch":
            # A real predictor resolves the trace's concrete outcome; the
            # front end redirects once the branch executes.
            if thread.predictor.update(instr.pc, instr.taken):
                stats.branch_mispredicts += 1
                redirect = completion + self.core.frontend_depth
                if redirect > thread.fetch_stalled_until:
                    thread.fetch_stalled_until = redirect

        thread.record_completion(completion)
        thread.rob.append(completion)
        stats.instructions += 1
        if thread._warm_snapshot is None:
            thread.maybe_snapshot(now)

    # ------------------------------------------------------------------ #
    # batched stepping kernel                                             #
    # ------------------------------------------------------------------ #

    def _step_numpy(self) -> None:
        """One cycle via the batched kernel — bit-identical to :meth:`step`.

        Same commit-then-dispatch structure, but the dispatch loop reads
        the precomputed per-field arrays (:class:`~repro.sim.kernel.
        TraceArrays`) instead of trace objects, inlines producer lookup,
        functional-unit issue and (without prefetchers) the L1D probe, and
        keeps per-thread state in locals, written back once per thread.
        Every state mutation happens in the same order as the scalar path,
        so shared-hierarchy interleavings are preserved exactly.
        """
        now = self.cycle
        width = self._width
        threads = self.threads

        for thread in threads:
            rob = thread.rob
            if rob:
                retired = 0
                while retired < width and rob and rob[0] <= now:
                    rob.popleft()
                    retired += 1
            if (
                not rob
                and thread.done_cycle is None
                and thread.cursor >= thread.trace_len
            ):
                thread.done_cycle = now
                thread.finalize_stats(now)

        budget = width
        n = self._n_threads
        if n == 1:
            order = threads
        elif self.fetch_policy == "icount":
            order = sorted(threads, key=_rob_depth)
        else:
            start = now % n
            order = threads[start:] + threads[:start]
        rob_share = self._rob_share
        is_ooo = self._is_ooo

        core_index = self.core_index
        freq = self._freq
        (
            instruction_access,
            data_access,
            data_l1_miss,
            counts,
            inline_l1,
            l1d,
            l1d_sets,
            l1d_stats,
            l1d_assoc,
            l1d_num_sets,
            l1d_line_bytes,
            l1_load_cycles,
            fu_units,
            fu_busy_tables,
            fu_next_tables,
            frontend_depth,
        ) = self._step_ctx

        for thread in order:
            if budget <= 0:
                break
            cursor = thread.cursor
            tlen = thread.trace_len
            if cursor >= tlen:
                continue
            rob = thread.rob
            rob_len = len(rob)
            fetch_stall = thread.fetch_stalled_until
            if now < fetch_stall or rob_len >= rob_share:
                continue
            (
                k_lat,
                k_fu,
                k_mem,
                k_pc,
                k_fline,
                k_addr,
                k_set,
                k_tag,
                k_dep,
                k_taken,
                stats,
                level_hits,
                comp_ring,
                rob_append,
                predictor_update,
                warmup,
            ) = thread._kctx
            instructions = stats.instructions
            comp_count = thread._comp_count
            last_line = thread.last_fetch_line
            snap_pending = thread._warm_snapshot is None

            while (
                budget > 0
                and cursor < tlen
                and now >= fetch_stall
                and rob_len < rob_share
            ):
                dep = k_dep[cursor]
                if 0 < dep <= comp_count and dep <= _DEP_WINDOW:
                    c = comp_ring[(comp_count - dep) & _DEP_MASK]
                    ready = c if c > now else now
                else:
                    ready = now
                if not is_ooo and ready > now:
                    break  # stall-on-use: input not ready

                line = k_fline[cursor]
                if line != last_line:
                    last_line = line
                    result = instruction_access(core_index, k_pc[cursor], now / freq)
                    if result.level != "l1":
                        stalled = now + int(result.latency_ns * freq * 0.4) + 1
                        if stalled > fetch_stall:
                            fetch_stall = stalled

                fu = k_fu[cursor]
                busy = fu_busy_tables[fu]
                if len(busy) > _FU_PRUNE_LIMIT:
                    self._prune_fu_state()
                units = fu_units[fu]
                t = ready
                used = busy.get(t, 0)
                if used >= units:
                    nxt = fu_next_tables[fu]
                    path = []
                    while used >= units:
                        path.append(t)
                        t = nxt.get(t, t + 1)
                        used = busy.get(t, 0)
                    for c in path:
                        nxt[c] = t
                busy[t] = used + 1
                issue = t

                mem = k_mem[cursor]
                if mem == 0:
                    completion = issue + k_lat[cursor]
                elif mem == 3:  # branch
                    completion = issue + k_lat[cursor]
                    if predictor_update(k_pc[cursor], k_taken[cursor]):
                        stats.branch_mispredicts += 1
                        redirect = completion + frontend_depth
                        if redirect > fetch_stall:
                            fetch_stall = redirect
                else:  # load (1) or store (2)
                    address = k_addr[cursor]
                    is_write = mem == 2
                    if inline_l1:
                        l1d_stats.accesses += 1
                        l1d.last_writeback_address = None
                        set_idx = k_set[cursor]
                        ways = l1d_sets[set_idx]
                        tag = k_tag[cursor]
                        dirty = ways.get(tag)
                        if dirty is not None:
                            l1d_stats.hits += 1
                            if is_write and not dirty:
                                ways[tag] = True
                            ways.move_to_end(tag)
                            counts["data.l1"] += 1
                            level = "l1"
                            mem_cycles = l1_load_cycles if mem == 1 else 1
                        else:
                            if len(ways) >= l1d_assoc:
                                victim_tag, victim_dirty = ways.popitem(last=False)
                                l1d_stats.evictions += 1
                                if victim_dirty:
                                    l1d_stats.writebacks += 1
                                    l1d.last_writeback_address = (
                                        victim_tag * l1d_num_sets + set_idx
                                    ) * l1d_line_bytes
                            ways[tag] = is_write
                            result = data_l1_miss(
                                core_index, address, issue / freq, is_write
                            )
                            level = result.level
                            mem_cycles = (
                                int(result.latency_ns * freq) if mem == 1 else 1
                            )
                    else:
                        result = data_access(
                            core_index, address, issue / freq, is_write, k_pc[cursor]
                        )
                        level = result.level
                        mem_cycles = int(result.latency_ns * freq) if mem == 1 else 1
                    level_hits[level] = level_hits.get(level, 0) + 1
                    total = k_lat[cursor] + mem_cycles
                    completion = issue + (total if total > 1 else 1)

                comp_ring[comp_count & _DEP_MASK] = completion
                comp_count += 1
                rob_append(completion)
                rob_len += 1
                instructions += 1
                cursor += 1
                budget -= 1
                if snap_pending and cursor >= warmup:
                    stats.instructions = instructions
                    thread.cursor = cursor
                    thread.maybe_snapshot(now)
                    snap_pending = False

            thread.cursor = cursor
            thread._comp_count = comp_count
            thread.last_fetch_line = last_line
            thread.fetch_stalled_until = fetch_stall
            stats.instructions = instructions
        self.cycle = now + 1

    # ------------------------------------------------------------------ #
    # idle-cycle skipping                                                 #
    # ------------------------------------------------------------------ #

    def next_event_cycle(self) -> int:
        """Earliest cycle >= ``self.cycle`` at which :meth:`step` can act.

        "Act" means: retire at least one ROB entry, record a thread finish,
        or dispatch at least one instruction.  Between the current cycle
        and the returned cycle the naive per-cycle loop provably does
        nothing — per-thread gating values (ROB head completion, fetch
        stall deadline, producer completion for stall-on-use) only change
        when a commit or dispatch happens — so advancing the clock straight
        to the returned cycle is bit-identical to stepping through.

        Returns a huge sentinel when every thread has drained.
        """
        now = self.cycle
        best = _NEVER
        rob_share = self._rob_share
        is_ooo = self._is_ooo
        for thread in self.threads:
            rob = thread.rob
            if rob:
                head = rob[0]
                if head <= now:
                    return now
                if head < best:
                    best = head
                if len(rob) >= rob_share:
                    # Dispatch gated on commit; the head event covers it.
                    continue
            if thread.cursor < thread.trace_len:
                ready = thread.fetch_stalled_until
                if not is_ooo:
                    pr = thread.producer_completion(
                        thread.trace[thread.cursor].dep_distance, now
                    )
                    if pr > ready:
                        ready = pr
                if ready <= now:
                    return now
                if ready < best:
                    best = ready
        return best

    def run_until(self, limit: int) -> int:
        """Step from ``self.cycle`` (skipping idle gaps) until the core's
        next event is >= ``limit`` or every thread drains.

        Returns the next event cycle (the drain sentinel when finished).
        The caller must guarantee that no other core acts in
        ``[self.cycle, limit)`` — the lockstep driver uses this to batch a
        solo-due core's whole span into one call, which is exactly the
        naive interleaving because every other core's step would be a
        no-op over that span.
        """
        if self._n_threads == 1 and self.kernel == "numpy":
            return self._run_span_1t(limit)
        step = self.step
        next_event = self.next_event_cycle
        while True:
            step()
            nxt = next_event()
            if nxt >= limit:
                return nxt
            self.cycle = nxt

    def _run_span_1t(self, limit: int) -> int:
        """:meth:`run_until` fused for a single-thread numpy-kernel core.

        One call runs the whole span — commit, dispatch, and an inlined
        single-thread :meth:`next_event_cycle` per cycle — with every hot
        binding hoisted out of the cycle loop (the per-step prologue is
        the dominant cost once a core runs alone).  The dispatch body is
        the same as :meth:`_step_numpy`'s, mutation for mutation, and the
        golden fingerprint suite pins the equivalence.
        """
        thread = self.threads[0]
        core_index = self.core_index
        freq = self._freq
        (
            instruction_access,
            data_access,
            data_l1_miss,
            counts,
            inline_l1,
            l1d,
            l1d_sets,
            l1d_stats,
            l1d_assoc,
            l1d_num_sets,
            l1d_line_bytes,
            l1_load_cycles,
            fu_units,
            fu_busy_tables,
            fu_next_tables,
            frontend_depth,
        ) = self._step_ctx
        width = self._width
        rob_share = self._rob_share
        is_ooo = self._is_ooo
        (
            k_lat,
            k_fu,
            k_mem,
            k_pc,
            k_fline,
            k_addr,
            k_set,
            k_tag,
            k_dep,
            k_taken,
            stats,
            level_hits,
            comp_ring,
            rob_append,
            predictor_update,
            warmup,
        ) = thread._kctx
        instructions = stats.instructions
        comp_count = thread._comp_count
        last_line = thread.last_fetch_line
        fetch_stall = thread.fetch_stalled_until
        rob = thread.rob
        rob_popleft = rob.popleft
        rob_len = len(rob)
        cursor = thread.cursor
        tlen = thread.trace_len
        snap_pending = thread._warm_snapshot is None
        now = self.cycle

        while True:
            # --- commit (identical to _step_numpy's commit phase) ---
            if rob_len:
                retired = 0
                while retired < width and rob_len and rob[0] <= now:
                    rob_popleft()
                    rob_len -= 1
                    retired += 1
            if not rob_len and cursor >= tlen:
                if thread.done_cycle is None:
                    thread.cursor = cursor
                    thread._comp_count = comp_count
                    thread.last_fetch_line = last_line
                    thread.fetch_stalled_until = fetch_stall
                    stats.instructions = instructions
                    thread.done_cycle = now
                    thread.finalize_stats(now)
                self.cycle = now + 1
                return _NEVER

            # --- dispatch (same body as _step_numpy) ---
            budget = width
            while (
                budget > 0
                and cursor < tlen
                and now >= fetch_stall
                and rob_len < rob_share
            ):
                dep = k_dep[cursor]
                if 0 < dep <= comp_count and dep <= _DEP_WINDOW:
                    c = comp_ring[(comp_count - dep) & _DEP_MASK]
                    ready = c if c > now else now
                else:
                    ready = now
                if not is_ooo and ready > now:
                    break  # stall-on-use: input not ready

                line = k_fline[cursor]
                if line != last_line:
                    last_line = line
                    result = instruction_access(core_index, k_pc[cursor], now / freq)
                    if result.level != "l1":
                        stalled = now + int(result.latency_ns * freq * 0.4) + 1
                        if stalled > fetch_stall:
                            fetch_stall = stalled

                fu = k_fu[cursor]
                busy = fu_busy_tables[fu]
                if len(busy) > _FU_PRUNE_LIMIT:
                    # _prune_fu_state keys off self.cycle, which this fused
                    # span only writes back on exit — sync it first so the
                    # prune actually drops past cycles.
                    self.cycle = now
                    self._prune_fu_state()
                units = fu_units[fu]
                t = ready
                used = busy.get(t, 0)
                if used >= units:
                    nxt_table = fu_next_tables[fu]
                    path = []
                    while used >= units:
                        path.append(t)
                        t = nxt_table.get(t, t + 1)
                        used = busy.get(t, 0)
                    for c in path:
                        nxt_table[c] = t
                busy[t] = used + 1
                issue = t

                mem = k_mem[cursor]
                if mem == 0:
                    completion = issue + k_lat[cursor]
                elif mem == 3:  # branch
                    completion = issue + k_lat[cursor]
                    if predictor_update(k_pc[cursor], k_taken[cursor]):
                        stats.branch_mispredicts += 1
                        redirect = completion + frontend_depth
                        if redirect > fetch_stall:
                            fetch_stall = redirect
                else:  # load (1) or store (2)
                    address = k_addr[cursor]
                    is_write = mem == 2
                    if inline_l1:
                        l1d_stats.accesses += 1
                        l1d.last_writeback_address = None
                        set_idx = k_set[cursor]
                        ways = l1d_sets[set_idx]
                        tag = k_tag[cursor]
                        dirty = ways.get(tag)
                        if dirty is not None:
                            l1d_stats.hits += 1
                            if is_write and not dirty:
                                ways[tag] = True
                            ways.move_to_end(tag)
                            counts["data.l1"] += 1
                            level = "l1"
                            mem_cycles = l1_load_cycles if mem == 1 else 1
                        else:
                            if len(ways) >= l1d_assoc:
                                victim_tag, victim_dirty = ways.popitem(last=False)
                                l1d_stats.evictions += 1
                                if victim_dirty:
                                    l1d_stats.writebacks += 1
                                    l1d.last_writeback_address = (
                                        victim_tag * l1d_num_sets + set_idx
                                    ) * l1d_line_bytes
                            ways[tag] = is_write
                            result = data_l1_miss(
                                core_index, address, issue / freq, is_write
                            )
                            level = result.level
                            mem_cycles = (
                                int(result.latency_ns * freq) if mem == 1 else 1
                            )
                    else:
                        result = data_access(
                            core_index, address, issue / freq, is_write, k_pc[cursor]
                        )
                        level = result.level
                        mem_cycles = int(result.latency_ns * freq) if mem == 1 else 1
                    level_hits[level] = level_hits.get(level, 0) + 1
                    total = k_lat[cursor] + mem_cycles
                    completion = issue + (total if total > 1 else 1)

                comp_ring[comp_count & _DEP_MASK] = completion
                comp_count += 1
                rob_append(completion)
                rob_len += 1
                instructions += 1
                cursor += 1
                budget -= 1
                if snap_pending and cursor >= warmup:
                    stats.instructions = instructions
                    thread.cursor = cursor
                    thread.maybe_snapshot(now)
                    snap_pending = False

            # --- next event (next_event_cycle inlined for one thread) ---
            now1 = now + 1
            nxt = _NEVER
            if rob_len:
                nxt = rob[0]
                if rob_len < rob_share and cursor < tlen:
                    ready = fetch_stall
                    if not is_ooo:
                        dep = k_dep[cursor]
                        if 0 < dep <= comp_count and dep <= _DEP_WINDOW:
                            c = comp_ring[(comp_count - dep) & _DEP_MASK]
                            if c > ready:
                                ready = c
                    if ready < nxt:
                        nxt = ready
            elif cursor < tlen:
                nxt = fetch_stall
                if not is_ooo:
                    dep = k_dep[cursor]
                    if 0 < dep <= comp_count and dep <= _DEP_WINDOW:
                        c = comp_ring[(comp_count - dep) & _DEP_MASK]
                        if c > nxt:
                            nxt = c
            else:
                # Drained; loop once more so the commit phase records it.
                nxt = now1
            if nxt < now1:
                nxt = now1
            if nxt >= limit:
                thread.cursor = cursor
                thread._comp_count = comp_count
                thread.last_fetch_line = last_line
                thread.fetch_stalled_until = fetch_stall
                stats.instructions = instructions
                self.cycle = now1
                return nxt
            now = nxt

    # ------------------------------------------------------------------ #
    # functional warming (sampled simulation)                             #
    # ------------------------------------------------------------------ #

    def functional_warm(
        self,
        per_thread: Union[int, Sequence[int]],
        dram_addresses: Optional[List[int]] = None,
    ) -> List[Tuple[int, int, int, int, int]]:
        """Advance every thread up to ``per_thread`` instructions with
        functional warming only.

        ``per_thread`` is either one count applied to every thread or a
        sequence of counts, one per thread in slot order — live sampling
        warms SMT siblings by *different* amounts so their relative rates
        of progress match the CPIs it measured (equal-instruction warming
        would keep a fast thread artificially co-resident with a slow
        sibling for the whole run).

        Caches see every reference (contents, LRU and dirty state update
        through the real access path) and branch predictors train on every
        outcome, but no cycles pass, no timing state (DRAM banks, off-chip
        bus) is touched, and no statistics are recorded — the Pac-Sim-style
        fast-forward between detailed windows.  Returns, per thread,
        ``(instructions_warmed, l2_hits, llc_hits, dram_accesses,
        branch_mispredicts)`` for the data stream — the stall events the
        sampled tier's extrapolation model prices (matching the levels a
        detailed window records in ``stats.level_hits``).

        ``dram_addresses``, if given, collects the address of every access
        that missed all cache levels (data and instruction side), so the
        caller can replay them into the DRAM timing model — warming bank
        and bus queues that the functional pass leaves untouched.
        """
        caches = self.hierarchy.core_caches[self.core_index]
        l1i, l1d, l2 = caches.l1i, caches.l1d, caches.l2
        llc = self.hierarchy.llc
        line_bytes = self._l1i_line_bytes
        if isinstance(per_thread, int):
            counts = [per_thread] * len(self.threads)
        else:
            counts = list(per_thread)
            if len(counts) != len(self.threads):
                raise ValueError(
                    f"functional_warm got {len(counts)} counts for "
                    f"{len(self.threads)} threads"
                )
        out: List[Tuple[int, int, int, int, int]] = []
        l1i_access = l1i.access
        l1d_access = l1d.access
        l2_access = l2.access
        llc_access = llc.access
        for thread, quota in zip(self.threads, counts):
            trace = thread.trace
            end = min(thread.trace_len, thread.cursor + quota)
            predictor_update = thread.predictor.update
            last_line = thread.last_fetch_line
            l2_hits = 0
            llc_hits = 0
            dram = 0
            mispredicts = 0
            k = thread._k
            if k is not None:
                # Batched-kernel variant of the loop below: identical access
                # sequence, driven by the precomputed per-field arrays.
                k_mem = k.mem_code
                k_pc = k.pc
                k_fline = k.fetch_line
                k_addr = k.address
                k_taken = k.taken
                for cursor in range(thread.cursor, end):
                    line = k_fline[cursor]
                    if line != last_line:
                        last_line = line
                        pc = k_pc[cursor]
                        if not l1i_access(pc):
                            if not l2_access(pc):
                                if not llc_access(pc):
                                    if dram_addresses is not None:
                                        dram_addresses.append(pc)
                    mem = k_mem[cursor]
                    if mem == 1 or mem == 2:
                        is_write = mem == 2
                        address = k_addr[cursor]
                        if not l1d_access(address, is_write):
                            if l2_access(address, is_write):
                                l2_hits += 1
                            elif llc_access(address, is_write):
                                llc_hits += 1
                            else:
                                dram += 1
                                if dram_addresses is not None:
                                    dram_addresses.append(address)
                    elif mem == 3:
                        if predictor_update(k_pc[cursor], k_taken[cursor]):
                            mispredicts += 1
            else:
                for cursor in range(thread.cursor, end):
                    instr = trace[cursor]
                    line = instr.pc // line_bytes
                    if line != last_line:
                        last_line = line
                        if not l1i_access(instr.pc):
                            if not l2_access(instr.pc):
                                if not llc_access(instr.pc):
                                    if dram_addresses is not None:
                                        dram_addresses.append(instr.pc)
                    kind = instr.kind
                    if kind == "load" or kind == "store":
                        is_write = kind == "store"
                        if not l1d_access(instr.address, is_write):
                            if l2_access(instr.address, is_write):
                                l2_hits += 1
                            elif llc_access(instr.address, is_write):
                                llc_hits += 1
                            else:
                                dram += 1
                                if dram_addresses is not None:
                                    dram_addresses.append(instr.address)
                    elif kind == "branch":
                        if predictor_update(instr.pc, instr.taken):
                            mispredicts += 1
            out.append((end - thread.cursor, l2_hits, llc_hits, dram, mispredicts))
            thread.cursor = end
            thread.last_fetch_line = last_line
        return out

    # ------------------------------------------------------------------ #
    # run loop                                                            #
    # ------------------------------------------------------------------ #

    @property
    def finished(self) -> bool:
        return all(t.finished for t in self.threads)

    def run(self, max_cycles: int = 50_000_000, fast_forward: bool = True) -> None:
        """Run until every thread has drained its trace.

        ``fast_forward`` enables exact idle-cycle skipping (see
        :meth:`next_event_cycle`); disabling it steps the naive per-cycle
        loop — results are bit-identical either way.
        """
        threads = self.threads
        while any(t.done_cycle is None for t in threads):
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"core {self.core_index} exceeded {max_cycles} cycles; "
                    "deadlocked or trace too long"
                )
            if fast_forward:
                target = self.next_event_cycle()
                if target > self.cycle:
                    if target >= max_cycles:
                        self.cycle = max_cycles
                        continue  # raises on the next loop check
                    self.cycle = target
            self.step()
        for thread in threads:
            if thread.done_cycle is None:
                thread.done_cycle = self.cycle
                thread.finalize_stats(self.cycle)
        self.hierarchy.publish_metrics()


def _rob_depth(thread: SimThread) -> int:
    """ICOUNT sort key: in-flight instruction count."""
    return len(thread.rob)

"""Cycle-level pipeline models: out-of-order and in-order cores with SMT.

One :class:`PipelineCore` advances cycle by cycle:

* **fetch/dispatch** — up to ``width`` instructions per cycle enter the
  back-end, shared round-robin among the resident hardware threads (the
  paper's SMT fetch policy [24]); a thread stalls on branch mispredictions
  (front-end redirect) and instruction-cache misses;
* **out-of-order back-end** — each thread owns a statically partitioned ROB
  slice; a dispatched instruction issues once its register producer has
  completed and a functional unit of its class is free, so independent
  instructions (including loads) overlap — memory-level parallelism emerges
  naturally from the window;
* **in-order back-end** (small cores) — dispatch blocks until the
  instruction's producer has completed (stall-on-use) and miss latencies
  serialize; with two hardware threads the core switches to the other
  thread's instructions while one is stalled (fine-grained MT);
* **commit** — in order per thread, bounded by width.

Memory latencies come from the shared :class:`~repro.memory.hierarchy.
MemoryHierarchy`, so co-running threads and other cores contend for L2/LLC
capacity, DRAM banks and the off-chip bus with real state.
"""

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.memory.hierarchy import MemoryHierarchy
from repro.microarch.branch import predictor_for_core
from repro.microarch.config import CoreConfig
from repro.sim.results import CoreSimStats
from repro.workloads.tracegen import EXEC_LATENCY, TraceInstruction

#: Ring size for producer completion-time tracking (max dependence distance).
_DEP_WINDOW = 64


class SimThread:
    """Architectural state of one hardware thread on a core."""

    def __init__(
        self,
        thread_id: int,
        trace: Sequence[TraceInstruction],
        warmup_instructions: int = 0,
    ):
        self.thread_id = thread_id
        self.trace = trace
        self.cursor = 0
        self.warmup_instructions = min(warmup_instructions, max(0, len(trace) - 1))
        self.stats = CoreSimStats()
        #: Per-thread branch predictor (SMT threads keep private history;
        #: table sharing/aliasing between contexts is not modelled).
        self.predictor = None  # installed by the owning PipelineCore
        self._warm_snapshot: Optional[Tuple[int, int, int, Dict[str, int]]] = None
        #: Completion cycles of the last _DEP_WINDOW dispatched instructions.
        self.completions: Deque[int] = deque(maxlen=_DEP_WINDOW)
        #: In-flight (program-ordered) completion times awaiting commit.
        self.rob: Deque[int] = deque()
        self.fetch_stalled_until = 0
        self.last_fetch_line = -1
        self.done_cycle: Optional[int] = None

    @property
    def finished(self) -> bool:
        return self.cursor >= len(self.trace) and not self.rob

    def maybe_snapshot(self, now: int) -> None:
        """Record the warm-up boundary so cold misses are excluded."""
        if self._warm_snapshot is None and self.cursor >= self.warmup_instructions:
            self.stats.cycles = now  # temporary marker; finalized at drain
            self._warm_snapshot = (
                self.stats.instructions,
                now,
                self.stats.branch_mispredicts,
                dict(self.stats.level_hits),
            )

    def finalize_stats(self, done_cycle: int) -> None:
        """Convert cumulative counters into measured-region statistics."""
        if self._warm_snapshot is None:
            self.stats.cycles = done_cycle
            return
        instr0, cycle0, mispred0, levels0 = self._warm_snapshot
        self.stats.instructions -= instr0
        self.stats.cycles = max(1, done_cycle - cycle0)
        self.stats.branch_mispredicts -= mispred0
        for level, count in levels0.items():
            self.stats.level_hits[level] = self.stats.level_hits[level] - count

    def producer_completion(self, dep_distance: int, now: int) -> int:
        """Cycle at which this instruction's register input becomes ready."""
        if dep_distance <= 0 or dep_distance > len(self.completions):
            return now
        return max(now, self.completions[-dep_distance])


class PipelineCore:
    """One core (out-of-order or in-order) executing up to N SMT threads."""

    def __init__(
        self,
        core: CoreConfig,
        core_index: int,
        hierarchy: MemoryHierarchy,
        traces: Sequence[Sequence[TraceInstruction]],
        warmup_instructions: int = 0,
        fetch_policy: str = "roundrobin",
    ):
        if fetch_policy not in ("roundrobin", "icount"):
            raise ValueError(
                f"fetch_policy must be 'roundrobin' or 'icount', "
                f"got {fetch_policy!r}"
            )
        self.fetch_policy = fetch_policy
        if not traces:
            raise ValueError("need at least one thread trace")
        if len(traces) > core.max_smt_contexts:
            raise ValueError(
                f"{core.name} core supports {core.max_smt_contexts} hardware "
                f"threads, got {len(traces)}"
            )
        self.core = core
        self.core_index = core_index
        self.hierarchy = hierarchy
        self.threads = [
            SimThread(i, t, warmup_instructions) for i, t in enumerate(traces)
        ]
        for thread in self.threads:
            thread.predictor = predictor_for_core(core.is_out_of_order)
        self.cycle = 0
        self._rob_share = (
            core.rob_size // len(self.threads) if core.is_out_of_order else core.width * 2
        )
        fu = core.functional_units
        #: Per-cycle issue-slot usage per functional-unit class.  Issue picks
        #: the first cycle >= ready with a free slot (hole-filling, so an
        #: instruction that becomes ready early is not blocked behind
        #: reservations made for later-ready instructions — proper
        #: out-of-order issue).
        self._fu_units: Dict[str, int] = {
            "int": fu.int_alu,
            "ldst": fu.load_store,
            "muldiv": fu.mul_div,
            "fp": fu.fp,
        }
        self._fu_busy: Dict[str, Dict[int, int]] = {k: {} for k in self._fu_units}
        self._last_prune = 0

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    def _now_ns(self) -> float:
        return self.cycle / self.core.frequency_ghz

    def _fu_class(self, kind: str) -> str:
        if kind in ("load", "store"):
            return "ldst"
        if kind in ("muldiv", "fp"):
            return kind
        return "int"  # int ops and branches use the integer ALUs

    def _acquire_fu(self, kind: str, ready: int) -> int:
        """Earliest cycle >= ``ready`` with a free unit of this class."""
        cls = self._fu_class(kind)
        units = self._fu_units[cls]
        busy = self._fu_busy[cls]
        t = ready
        while busy.get(t, 0) >= units:
            t += 1
        busy[t] = busy.get(t, 0) + 1
        return t

    def _prune_fu_state(self) -> None:
        """Drop issue-slot bookkeeping for cycles already in the past."""
        now = self.cycle
        for busy in self._fu_busy.values():
            stale = [c for c in busy if c < now]
            for c in stale:
                del busy[c]
        self._last_prune = now

    def _fetch_line(self, thread: SimThread, instr: TraceInstruction) -> None:
        """Model instruction-cache behaviour at cache-line granularity."""
        line = instr.pc // self.hierarchy.llc.config.line_bytes
        if line == thread.last_fetch_line:
            return
        thread.last_fetch_line = line
        result = self.hierarchy.instruction_access(
            self.core_index, instr.pc, self._now_ns()
        )
        if result.level != "l1":
            # The front end runs ahead and next-line-prefetches sequential
            # code, hiding most of an i-miss behind the fetch buffer; only a
            # fraction of the latency reaches dispatch.
            delay = int(result.latency_ns * self.core.frequency_ghz * 0.4) + 1
            thread.fetch_stalled_until = max(
                thread.fetch_stalled_until, self.cycle + delay
            )

    # ------------------------------------------------------------------ #
    # one cycle                                                           #
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Advance the core by one cycle (commit, then dispatch)."""
        now = self.cycle
        width = self.core.width
        if now - self._last_prune >= 4096:
            self._prune_fu_state()

        # Commit: in order per thread, up to `width` per thread.
        for thread in self.threads:
            retired = 0
            while thread.rob and retired < width and thread.rob[0] <= now:
                thread.rob.popleft()
                retired += 1
            if thread.finished and thread.done_cycle is None:
                thread.done_cycle = now
                thread.finalize_stats(now)

        # Dispatch: share the core width across threads.  Round-robin
        # rotates priority cycle by cycle [24]; ICOUNT [31] gives the
        # thread with the fewest in-flight instructions first pick, which
        # keeps fast-moving threads moving.
        budget = width
        n = len(self.threads)
        if self.fetch_policy == "icount":
            order = sorted(self.threads, key=lambda th: len(th.rob))
        else:
            start = now % n
            order = [self.threads[(start + off) % n] for off in range(n)]
        for thread in order:
            while budget > 0 and self._can_dispatch(thread, now):
                self._dispatch(thread, now)
                budget -= 1
        self.cycle += 1

    def _can_dispatch(self, thread: SimThread, now: int) -> bool:
        if thread.cursor >= len(thread.trace):
            return False
        if now < thread.fetch_stalled_until:
            return False
        if len(thread.rob) >= self._rob_share:
            return False
        if not self.core.is_out_of_order:
            # Stall-on-use: the next instruction must have its input ready.
            instr = thread.trace[thread.cursor]
            if thread.producer_completion(instr.dep_distance, now) > now:
                return False
        return True

    def _dispatch(self, thread: SimThread, now: int) -> None:
        instr = thread.trace[thread.cursor]
        thread.cursor += 1
        self._fetch_line(thread, instr)

        ready = thread.producer_completion(instr.dep_distance, now)
        issue = self._acquire_fu(instr.kind, ready)
        latency = EXEC_LATENCY[instr.kind]
        if instr.kind in ("load", "store"):
            issue_ns = issue / self.core.frequency_ghz
            result = self.hierarchy.data_access(
                self.core_index,
                instr.address,
                issue_ns,
                is_write=(instr.kind == "store"),
                pc=instr.pc,
            )
            thread.stats.record_level(result.level)
            mem_cycles = (
                int(result.latency_ns * self.core.frequency_ghz)
                if instr.kind == "load"
                else 1  # stores retire through the write buffer
            )
            completion = issue + max(1, latency + mem_cycles)
        else:
            completion = issue + latency

        if instr.kind == "branch":
            # A real predictor resolves the trace's concrete outcome; the
            # front end redirects once the branch executes.
            if thread.predictor.update(instr.pc, instr.taken):
                thread.stats.branch_mispredicts += 1
                thread.fetch_stalled_until = max(
                    thread.fetch_stalled_until,
                    completion + self.core.frontend_depth,
                )

        thread.completions.append(completion)
        thread.rob.append(completion)
        thread.stats.instructions += 1
        thread.maybe_snapshot(now)

    # ------------------------------------------------------------------ #
    # run loop                                                            #
    # ------------------------------------------------------------------ #

    @property
    def finished(self) -> bool:
        return all(t.finished for t in self.threads)

    def run(self, max_cycles: int = 50_000_000) -> None:
        """Run until every thread has drained its trace."""
        while not self.finished:
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"core {self.core_index} exceeded {max_cycles} cycles; "
                    "deadlocked or trace too long"
                )
            self.step()
        for thread in self.threads:
            if thread.done_cycle is None:
                thread.done_cycle = self.cycle
                thread.finalize_stats(self.cycle)

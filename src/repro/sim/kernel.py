"""Kernel selection and batched trace precomputation for the cycle tier.

The per-cycle simulation loop exists in two implementations that produce
bit-identical results (asserted by the golden-fingerprint suite in
``tests/test_sim_fastpath.py``):

* ``scalar`` — the readable reference path: one :class:`TraceInstruction`
  at a time, attribute access per field, method calls per cache level.
* ``numpy`` (default) — the batched path: at core construction every
  thread's trace is transposed into flat per-field arrays
  (:class:`TraceArrays`), with NumPy doing the whole-trace address
  arithmetic up front — instruction-fetch line numbers and L1D set/tag
  decomposition are computed once for all instructions instead of per
  dispatch, and instruction kinds collapse into small integer codes so the
  hot loop never touches a string.  The arrays are converted to plain
  Python lists before the loop runs because CPython list indexing is
  faster than ndarray scalar extraction (the same trick the interval
  tier's vectorized solver uses for its hot scalar tail).

Select with the ``REPRO_SIM_KERNEL`` environment variable (``numpy`` or
``scalar``).  The variable is read when a core is constructed, so a single
process can compare both by building two simulators.  When NumPy is not
importable the selector silently falls back to ``scalar`` — the cycle tier
has no hard NumPy dependency.
"""

import os
from typing import List, Optional, Sequence

from repro.workloads.tracegen import EXEC_LATENCY, TraceInstruction

try:  # pragma: no cover - numpy is present in the supported environments
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Functional-unit class codes, indexable by the codes in
#: :attr:`TraceArrays.fu_code` (order is load-bearing: it matches the
#: lists :class:`~repro.sim.core.PipelineCore` builds from its per-class
#: dicts, so both kernels share one set of issue-slot tables).
FU_CLASSES = ("int", "ldst", "muldiv", "fp")

_FU_CODE = {"int": 0, "branch": 0, "load": 1, "store": 1, "muldiv": 2, "fp": 3}

#: Memory-behaviour codes: 0 = plain compute, 1 = load, 2 = store,
#: 3 = branch.
_MEM_CODE = {"int": 0, "fp": 0, "muldiv": 0, "load": 1, "store": 2, "branch": 3}

_VALID_KERNELS = ("numpy", "scalar")


def active_kernel(requested: Optional[str] = None) -> str:
    """Resolve the cycle-tier kernel: explicit argument, else
    ``$REPRO_SIM_KERNEL``, else ``numpy`` (with a silent fallback to
    ``scalar`` when NumPy is unavailable)."""
    value = requested or os.environ.get("REPRO_SIM_KERNEL", "").strip().lower()
    if not value:
        value = "numpy"
    if value not in _VALID_KERNELS:
        raise ValueError(
            f"REPRO_SIM_KERNEL must be one of {_VALID_KERNELS}, got {value!r}"
        )
    if value == "numpy" and _np is None:
        return "scalar"
    return value


class TraceArrays:
    """One thread's trace, transposed into flat per-field lists.

    Every list has one entry per instruction, indexed by the thread's
    cursor.  ``fetch_line``, ``l1d_set`` and ``l1d_tag`` hold the address
    arithmetic that the scalar path recomputes on every dispatch.
    """

    __slots__ = (
        "exec_lat",
        "fu_code",
        "mem_code",
        "pc",
        "fetch_line",
        "address",
        "l1d_set",
        "l1d_tag",
        "dep",
        "taken",
    )

    def __init__(
        self,
        exec_lat: List[int],
        fu_code: List[int],
        mem_code: List[int],
        pc: List[int],
        fetch_line: List[int],
        address: List[int],
        l1d_set: List[int],
        l1d_tag: List[int],
        dep: List[int],
        taken: List[bool],
    ):
        self.exec_lat = exec_lat
        self.fu_code = fu_code
        self.mem_code = mem_code
        self.pc = pc
        self.fetch_line = fetch_line
        self.address = address
        self.l1d_set = l1d_set
        self.l1d_tag = l1d_tag
        self.dep = dep
        self.taken = taken


def build_trace_arrays(
    trace: Sequence[TraceInstruction],
    l1i_line_bytes: int,
    l1d_line_bytes: int,
    l1d_num_sets: int,
) -> TraceArrays:
    """Batch-precompute per-instruction fields for the numpy kernel.

    The set/tag decomposition uses floor division exactly like
    :meth:`repro.memory.cache.Cache._locate` (shift/mask and divmod agree
    for the non-negative addresses the generator emits; the ``-1``
    sentinel addresses of non-memory instructions produce garbage entries
    that the kernel never reads because their ``mem_code`` is 0 or 3).
    """
    if not trace:
        empty: List[int] = []
        return TraceArrays(
            empty, empty, empty, empty, empty, empty, empty, empty, empty, []
        )
    kinds, pcs, addresses, deps, _mispred, takens = zip(*trace)
    meta = [(EXEC_LATENCY[k], _FU_CODE[k], _MEM_CODE[k]) for k in kinds]
    exec_lat, fu_code, mem_code = (list(col) for col in zip(*meta))
    if _np is not None:
        pc_arr = _np.array(pcs, dtype=_np.int64)
        addr_arr = _np.array(addresses, dtype=_np.int64)
        fetch_line = (pc_arr // l1i_line_bytes).tolist()
        line = addr_arr // l1d_line_bytes
        l1d_set = (line % l1d_num_sets).tolist()
        l1d_tag = (line // l1d_num_sets).tolist()
    else:  # pragma: no cover - exercised only without numpy
        fetch_line = [pc // l1i_line_bytes for pc in pcs]
        lines = [a // l1d_line_bytes for a in addresses]
        l1d_set = [ln % l1d_num_sets for ln in lines]
        l1d_tag = [ln // l1d_num_sets for ln in lines]
    return TraceArrays(
        exec_lat,
        fu_code,
        mem_code,
        list(pcs),
        fetch_line,
        list(addresses),
        l1d_set,
        l1d_tag,
        list(deps),
        list(takens),
    )

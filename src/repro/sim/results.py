"""Result records for the cycle-level simulator."""

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CoreSimStats:
    """Per-thread statistics accumulated by a pipeline model."""

    instructions: int = 0
    cycles: int = 0
    branch_mispredicts: int = 0
    level_hits: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def record_level(self, level: str) -> None:
        self.level_hits[level] = self.level_hits.get(level, 0) + 1

"""Core microarchitecture configurations (Table 1 of the paper).

Three core types are studied:

* **big** — four-wide out-of-order, 128-entry ROB, up to 6 SMT contexts;
* **medium** — two-wide out-of-order, 32-entry ROB, up to 3 SMT contexts;
* **small** — two-wide in-order with fine-grained multithreading, up to
  2 hardware threads.

All three run at 2.66 GHz in the baseline study.  Private caches scale with
the core's power budget so that total on-chip cache capacity is constant
across chip designs (Section 3.1 of the paper): the medium core's private
caches are half the big core's, the small core's one fifth (rounded to
"powers of two or just in between").

Section 8.1 of the paper additionally evaluates *larger-cache* (``_lc``) and
*higher-frequency* (``_hf``) variants of the medium and small cores; those
are exposed here as well.
"""

from dataclasses import dataclass, replace
from enum import Enum
from typing import Tuple

from repro.util import KB, check_positive


class CoreType(Enum):
    """Execution paradigm of a core pipeline."""

    OUT_OF_ORDER = "out-of-order"
    IN_ORDER = "in-order"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of a single cache.

    Parameters
    ----------
    size_bytes:
        Total capacity in bytes.
    associativity:
        Number of ways per set.
    latency_cycles:
        Hit latency in core cycles (load-to-use for L1).
    line_bytes:
        Cache line size; 64 bytes everywhere in this study.
    """

    size_bytes: int
    associativity: int
    latency_cycles: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        check_positive("associativity", self.associativity)
        check_positive("latency_cycles", self.latency_cycles)
        check_positive("line_bytes", self.line_bytes)
        if self.size_bytes % self.line_bytes != 0:
            raise ValueError(
                f"size_bytes ({self.size_bytes}) must be a multiple of "
                f"line_bytes ({self.line_bytes})"
            )
        lines = self.size_bytes // self.line_bytes
        if lines % self.associativity != 0:
            raise ValueError(
                f"number of lines ({lines}) must be a multiple of "
                f"associativity ({self.associativity})"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.size_bytes // self.line_bytes // self.associativity


@dataclass(frozen=True)
class FunctionalUnits:
    """Counts of the execution units in a core (Table 1)."""

    int_alu: int = 3
    load_store: int = 2
    mul_div: int = 1
    fp: int = 1

    def __post_init__(self) -> None:
        check_positive("int_alu", self.int_alu)
        check_positive("load_store", self.load_store)
        check_positive("mul_div", self.mul_div)
        check_positive("fp", self.fp)

    @property
    def total(self) -> int:
        return self.int_alu + self.load_store + self.mul_div + self.fp


@dataclass(frozen=True)
class CoreConfig:
    """Full configuration of one core, as in Table 1 of the paper.

    ``power_weight`` expresses the power-equivalence used to build the chip
    designs of Figure 2: one big core is power-equivalent to two medium cores
    and five small cores, so ``power_weight`` is 1.0 / 0.5 / 0.2 for
    big / medium / small.  The ``_lc``/``_hf`` variants of Section 8.1 have
    weights 1/1.5 and 1/4 instead.
    """

    name: str
    core_type: CoreType
    width: int
    rob_size: int  # 0 for in-order cores (no ROB)
    functional_units: FunctionalUnits
    max_smt_contexts: int
    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    frequency_ghz: float = 2.66
    frontend_depth: int = 5  # pipeline stages drained on a branch mispredict
    power_weight: float = 1.0

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("max_smt_contexts", self.max_smt_contexts)
        check_positive("frequency_ghz", self.frequency_ghz)
        check_positive("frontend_depth", self.frontend_depth)
        check_positive("power_weight", self.power_weight)
        if self.core_type is CoreType.OUT_OF_ORDER:
            check_positive("rob_size", self.rob_size)
        elif self.rob_size != 0:
            raise ValueError("in-order cores must have rob_size == 0")

    @property
    def is_out_of_order(self) -> bool:
        return self.core_type is CoreType.OUT_OF_ORDER

    def rob_share(self, n_threads: int) -> int:
        """ROB entries available to one thread under static partitioning.

        The simulated SMT core statically partitions the ROB among the active
        hardware threads (Raasch & Reinhardt [24]); an in-order core has no
        ROB and returns 0.
        """
        check_positive("n_threads", n_threads)
        if n_threads > self.max_smt_contexts:
            raise ValueError(
                f"{self.name} supports at most {self.max_smt_contexts} SMT "
                f"contexts, got {n_threads}"
            )
        if not self.is_out_of_order:
            return 0
        return self.rob_size // n_threads

    def with_frequency(self, frequency_ghz: float) -> "CoreConfig":
        """A copy of this configuration at a different clock frequency."""
        return replace(self, frequency_ghz=frequency_ghz)

    def with_caches(
        self, l1i: CacheConfig, l1d: CacheConfig, l2: CacheConfig
    ) -> "CoreConfig":
        """A copy of this configuration with different private caches."""
        return replace(self, l1i=l1i, l1d=l1d, l2=l2)


def _big_caches() -> Tuple[CacheConfig, CacheConfig, CacheConfig]:
    return (
        CacheConfig(32 * KB, 4, latency_cycles=2),
        CacheConfig(32 * KB, 4, latency_cycles=2),
        CacheConfig(256 * KB, 8, latency_cycles=12),
    )


#: Four-wide out-of-order big core (Table 1, first column).
BIG = CoreConfig(
    name="big",
    core_type=CoreType.OUT_OF_ORDER,
    width=4,
    rob_size=128,
    functional_units=FunctionalUnits(int_alu=3, load_store=2, mul_div=1, fp=1),
    max_smt_contexts=6,
    l1i=_big_caches()[0],
    l1d=_big_caches()[1],
    l2=_big_caches()[2],
    power_weight=1.0,
)

#: Two-wide out-of-order medium core (Table 1, second column).
MEDIUM = CoreConfig(
    name="medium",
    core_type=CoreType.OUT_OF_ORDER,
    width=2,
    rob_size=32,
    functional_units=FunctionalUnits(int_alu=2, load_store=1, mul_div=1, fp=1),
    max_smt_contexts=3,
    l1i=CacheConfig(16 * KB, 2, latency_cycles=2),
    l1d=CacheConfig(16 * KB, 2, latency_cycles=2),
    l2=CacheConfig(128 * KB, 4, latency_cycles=10),
    power_weight=0.5,
)

#: Two-wide in-order small core (Table 1, third column); fine-grained MT.
SMALL = CoreConfig(
    name="small",
    core_type=CoreType.IN_ORDER,
    width=2,
    rob_size=0,
    functional_units=FunctionalUnits(int_alu=2, load_store=1, mul_div=1, fp=1),
    max_smt_contexts=2,
    l1i=CacheConfig(6 * KB, 2, latency_cycles=1),
    l1d=CacheConfig(6 * KB, 2, latency_cycles=1),
    l2=CacheConfig(48 * KB, 4, latency_cycles=8),
    frontend_depth=4,
    power_weight=0.2,
)

#: Section 8.1 ``lc`` variants: medium/small cores with big-core-sized private
#: caches.  Larger caches cost power, shifting the power equivalence to
#: 1 big = 1.5 medium_lc = 4 small_lc.
MEDIUM_LC = replace(
    MEDIUM.with_caches(*_big_caches()), name="medium_lc", power_weight=1.0 / 1.5
)

SMALL_LC = replace(
    SMALL.with_caches(*_big_caches()), name="small_lc", power_weight=0.25
)

#: Section 8.1 ``hf`` variants: medium/small cores clocked at 3.33 GHz instead
#: of 2.66 GHz, again shifting power equivalence to 1:1.5 and 1:4.
MEDIUM_HF = replace(
    MEDIUM.with_frequency(3.33), name="medium_hf", power_weight=1.0 / 1.5
)

SMALL_HF = replace(SMALL.with_frequency(3.33), name="small_hf", power_weight=0.25)

#: All named core configurations, keyed by name.
CORE_CONFIGS = {
    cfg.name: cfg
    for cfg in (BIG, MEDIUM, SMALL, MEDIUM_LC, SMALL_LC, MEDIUM_HF, SMALL_HF)
}

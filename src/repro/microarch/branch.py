"""Branch predictor models for the cycle-level tier.

The trace generator emits branch *outcomes* (taken/not-taken with a
per-profile bias and correlation); the pipeline model consults a predictor
and charges the front-end redirect penalty on real mispredictions, instead
of trusting a pre-computed mispredict flag.  Two predictors are provided:

* :class:`GShare` — global-history XOR-indexed table of 2-bit saturating
  counters, the classic baseline;
* :class:`Bimodal` — per-PC 2-bit counters, no global history (used by the
  small in-order core, whose front end is cheaper).

Both are deliberately small, deterministic and dependency-free.
"""

from typing import List

from repro.util import check_positive

#: 2-bit saturating counter states: 0,1 predict not-taken; 2,3 predict taken.
_WEAKLY_TAKEN = 2
_COUNTER_MAX = 3


class Bimodal:
    """Per-PC table of 2-bit saturating counters."""

    def __init__(self, entries: int = 4096):
        check_positive("entries", entries)
        if entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self._mask = entries - 1
        self._table: List[int] = [_WEAKLY_TAKEN] * entries
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._table[self._index(pc)] >= _WEAKLY_TAKEN

    def update(self, pc: int, taken: bool) -> bool:
        """Train on the resolved outcome; returns True on a misprediction."""
        idx = self._index(pc)
        predicted = self._table[idx] >= _WEAKLY_TAKEN
        if taken:
            self._table[idx] = min(_COUNTER_MAX, self._table[idx] + 1)
        else:
            self._table[idx] = max(0, self._table[idx] - 1)
        self.predictions += 1
        mispredicted = predicted != taken
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0


class GShare(Bimodal):
    """Global-history gshare predictor (history XOR pc indexes the table)."""

    def __init__(self, entries: int = 8192, history_bits: int = 6):
        super().__init__(entries)
        check_positive("history_bits", history_bits)
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def update(self, pc: int, taken: bool) -> bool:
        mispredicted = super().update(pc, taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return mispredicted


def predictor_for_core(is_out_of_order: bool) -> Bimodal:
    """The predictor class matching a core's front-end budget."""
    return GShare() if is_out_of_order else Bimodal(entries=1024)

"""Uncore (shared) component configuration: LLC, crossbar, bus, DRAM.

The paper keeps the uncore identical across all chip designs (Section 3.1):
an 8 MB 16-way shared last-level cache, a full crossbar between all cores and
the LLC at 2.66 GHz, 8 DRAM banks with 45 ns access time, and an 8 GB/s
off-chip bus (16 GB/s in the Section 8.2 sensitivity study).
"""

from dataclasses import dataclass, replace

from repro.microarch.config import CacheConfig
from repro.util import GHZ, MB, check_positive


@dataclass(frozen=True)
class DramConfig:
    """Main-memory configuration: banked DRAM behind an off-chip bus."""

    num_banks: int = 8
    access_latency_ns: float = 45.0
    bus_bandwidth_bytes_per_s: float = 8e9

    def __post_init__(self) -> None:
        check_positive("num_banks", self.num_banks)
        check_positive("access_latency_ns", self.access_latency_ns)
        check_positive("bus_bandwidth_bytes_per_s", self.bus_bandwidth_bytes_per_s)


@dataclass(frozen=True)
class InterconnectConfig:
    """On-chip interconnect between private L2s and the shared LLC.

    The baseline is a full crossbar so results are not skewed against
    many-core designs by network contention (paper, Section 3.1).  A shared
    bus is provided as an ablation (DESIGN.md Section 6): on a bus, requests
    from all cores serialize.
    """

    kind: str = "crossbar"  # "crossbar" | "bus"
    frequency_ghz: float = 2.66
    hop_latency_cycles: int = 4

    def __post_init__(self) -> None:
        if self.kind not in ("crossbar", "bus"):
            raise ValueError(f"kind must be 'crossbar' or 'bus', got {self.kind!r}")
        check_positive("frequency_ghz", self.frequency_ghz)
        check_positive("hop_latency_cycles", self.hop_latency_cycles)


@dataclass(frozen=True)
class UncoreConfig:
    """Everything shared by all cores on a chip."""

    llc: CacheConfig = CacheConfig(8 * MB, 16, latency_cycles=30)
    interconnect: InterconnectConfig = InterconnectConfig()
    dram: DramConfig = DramConfig()

    def with_bandwidth(self, bytes_per_s: float) -> "UncoreConfig":
        """A copy with a different off-chip bus bandwidth (Section 8.2)."""
        return replace(self, dram=replace(self.dram, bus_bandwidth_bytes_per_s=bytes_per_s))

    def dram_latency_cycles(self, core_frequency_ghz: float) -> float:
        """Unloaded DRAM access latency in cycles at ``core_frequency_ghz``."""
        return self.dram.access_latency_ns * core_frequency_ghz


#: Baseline uncore (8 GB/s off-chip bus).
DEFAULT_UNCORE = UncoreConfig()

#: Section 8.2 uncore with the off-chip bus doubled to 16 GB/s.
HIGH_BANDWIDTH_UNCORE = DEFAULT_UNCORE.with_bandwidth(16e9)

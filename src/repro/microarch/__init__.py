"""Core and uncore microarchitecture configurations (Table 1)."""

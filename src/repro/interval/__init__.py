"""Interval-analysis performance models (the Sniper-style fast path).

``model`` evaluates one core with its resident SMT threads; ``contention``
solves a whole chip including shared-cache partitioning and bus/DRAM
queueing.
"""

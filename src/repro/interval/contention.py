"""Chip-level model: shared caches, off-chip bus and DRAM-bank contention.

:class:`ChipModel` evaluates a full chip design with a given placement of
threads on cores.  It combines the per-core interval models
(:mod:`repro.interval.model`) with three shared-resource effects the paper
identifies as decisive at high thread counts (Section 4.1):

* **shared-cache capacity** — co-resident threads partition each cache level
  in proportion to their demand (miss pressure at that capacity), so a
  memory-intensive program co-scheduled with compute-intensive programs on
  an SMT core occupies most of the private L2 — the effect that lets the 4B
  design use cache "more efficiently through intelligent scheduling";
* **off-chip bus queueing** — an M/D/1-style queue on the 8 GB/s (or
  16 GB/s) bus inflates memory latency as utilization grows, which is what
  flattens the design space for bandwidth-bound workloads (libquantum's
  4x memory-latency inflation at 24 threads);
* **DRAM bank pressure** — eight banks bound the service rate behind the bus.

Because per-thread IPC determines traffic and traffic determines latency,
the solver iterates to a fixed point with damping.
"""

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.designs import ChipDesign
from repro.interval.model import (
    CoreBatchStatics,
    CoreEnvironment,
    CoreResult,
    IntervalCoreModel,
)
from repro.microarch.config import BIG, CoreConfig
from repro.microarch.uncore import DEFAULT_UNCORE, UncoreConfig
from repro.obs import METRICS, TRACER
from repro.util import MB, check_fraction
from repro.workloads.profiles import BenchmarkProfile

#: Dirty-line writebacks add traffic on top of demand fills.
WRITEBACK_TRAFFIC_FACTOR = 1.3

#: Utilization cap that keeps the queueing model finite.
MAX_UTILIZATION = 0.98

#: Bisection controls for the latency fixed point.
BISECTION_STEPS = 40
CONVERGENCE_NS = 0.01

#: Solver selection: ``vector`` (default) runs the NumPy batch kernel with
#: scalar endpoint evaluations, ``scalar`` forces the golden reference
#: implementation, ``verify`` runs both and asserts bit-identical results.
SOLVER_ENV = "REPRO_INTERVAL_SOLVER"


def _solver_mode() -> str:
    mode = os.environ.get(SOLVER_ENV, "vector")
    if mode not in ("vector", "scalar", "verify"):
        raise ValueError(
            f"{SOLVER_ENV} must be 'vector', 'scalar' or 'verify', got {mode!r}"
        )
    return mode


@dataclass(frozen=True)
class ThreadSpec:
    """One software thread to be placed on a hardware context.

    ``duty_cycle`` < 1 models time-sharing: in no-SMT mode with more active
    threads than cores, each thread on a core runs a fraction of the time.
    """

    profile: BenchmarkProfile
    duty_cycle: float = 1.0

    def __post_init__(self) -> None:
        check_fraction("duty_cycle", self.duty_cycle)
        if self.duty_cycle == 0.0:
            raise ValueError("duty_cycle must be > 0")


@dataclass(frozen=True)
class Placement:
    """Threads assigned to each core of a design (index-aligned with cores)."""

    core_threads: Tuple[Tuple[ThreadSpec, ...], ...]

    @classmethod
    def from_lists(cls, core_threads: Sequence[Sequence[ThreadSpec]]) -> "Placement":
        return cls(tuple(tuple(ts) for ts in core_threads))

    @property
    def num_threads(self) -> int:
        return sum(len(ts) for ts in self.core_threads)

    def validate_against(self, design: ChipDesign, smt: bool) -> None:
        """Raise if the placement is infeasible on ``design``.

        Without SMT a core still holds multiple *time-shared* threads, so the
        per-core bound is only checked in SMT mode (contexts are a hardware
        limit; time-sharing is not).
        """
        if len(self.core_threads) != design.num_cores:
            raise ValueError(
                f"placement has {len(self.core_threads)} core slots, design "
                f"{design.name} has {design.num_cores} cores"
            )
        if smt:
            for core, threads in zip(design.cores, self.core_threads):
                if len(threads) > core.max_smt_contexts:
                    raise ValueError(
                        f"{core.name} core supports {core.max_smt_contexts} "
                        f"SMT contexts, placement assigns {len(threads)}"
                    )


@dataclass(frozen=True)
class ThreadOutcome:
    """Chip-level performance of one thread."""

    core_index: int
    benchmark: str
    ipc: float  # instructions per core cycle, duty-scaled
    ips: float  # instructions per second, duty-scaled
    duty_cycle: float


@dataclass(frozen=True)
class ChipResult:
    """Outcome of a chip evaluation at the solved fixed point."""

    design_name: str
    threads: Tuple[ThreadOutcome, ...]
    core_results: Tuple[CoreResult, ...]
    core_utilizations: Tuple[float, ...]
    mem_latency_ns: float
    unloaded_mem_latency_ns: float
    bus_utilization: float
    iterations: int

    @property
    def total_ips(self) -> float:
        return sum(t.ips for t in self.threads)

    @property
    def mem_latency_inflation(self) -> float:
        """Loaded over unloaded memory latency (libquantum hits ~4x)."""
        return self.mem_latency_ns / self.unloaded_mem_latency_ns


def _demand_shares(
    capacity: float, weights: Sequence[float], duties: Sequence[float]
) -> List[float]:
    """Demand-proportional capacity shares with residency weighting.

    When all duty cycles are 1 this is plain proportional sharing
    ``capacity * w_i / sum(w)``.  A time-shared thread (duty < 1) is absent
    most of the time, so its co-residents see more capacity and it sees
    nearly the whole cache while it runs (minus a cold-footprint effect
    captured by the residual term).
    """
    if not weights:
        return []
    pressure = sum(w * d for w, d in zip(weights, duties))
    shares = []
    for w, d in zip(weights, duties):
        co_resident_pressure = pressure - w * d + w
        shares.append(capacity * w / co_resident_pressure)
    return shares


class ChipModel:
    """Evaluates thread placements on a chip design at a solved fixed point.

    ``llc_sharing`` selects the shared-cache capacity model:
    ``"demand"`` (default) partitions the LLC in proportion to each
    thread's miss pressure — what an LRU-managed shared cache converges to;
    ``"even"`` splits it equally regardless of demand, an ablation that
    removes the cache-usage advantage the paper attributes to intelligent
    SMT co-scheduling.  ``rob_partitioning`` is forwarded to the per-core
    interval models (see :class:`~repro.interval.model.IntervalCoreModel`).
    """

    def __init__(
        self,
        design: ChipDesign,
        llc_sharing: str = "demand",
        rob_partitioning: str = "static",
        fetch_policy: str = "roundrobin",
    ):
        if llc_sharing not in ("demand", "even"):
            raise ValueError(
                f"llc_sharing must be 'demand' or 'even', got {llc_sharing!r}"
            )
        self.design = design
        self.uncore: UncoreConfig = design.uncore
        self.llc_sharing = llc_sharing
        self._core_models = [
            IntervalCoreModel(core, rob_partitioning, fetch_policy)
            for core in design.cores
        ]
        # Uncore-derived latency constants, computed once: the queueing
        # helpers below run in the solver's innermost loop, and the uncore
        # is immutable.  The expressions (and so the float values) are
        # exactly what the former on-the-fly properties produced.
        unc = self.uncore
        cycles = unc.llc.latency_cycles + 2 * unc.interconnect.hop_latency_cycles
        self._llc_lat_const = cycles / unc.interconnect.frequency_ghz
        self._line_transfer_const = (
            unc.llc.line_bytes / unc.dram.bus_bandwidth_bytes_per_s * 1e9
        )
        self._unloaded_const = (
            self._llc_lat_const
            + unc.dram.access_latency_ns
            + self._line_transfer_const
        )
        self._half_line_transfer = self._line_transfer_const / 2.0
        self._half_bank_service = unc.dram.access_latency_ns / 2.0
        self._bus_bw = unc.dram.bus_bandwidth_bytes_per_s
        self._line_wb_bytes = unc.llc.line_bytes * WRITEBACK_TRAFFIC_FACTOR
        self._bank_service_ns = unc.dram.access_latency_ns
        self._num_banks = unc.dram.num_banks

    # ------------------------------------------------------------------ #
    # latency building blocks (all in nanoseconds; converted per core)    #
    # ------------------------------------------------------------------ #

    @property
    def _llc_latency_ns(self) -> float:
        return self._llc_lat_const

    @property
    def _line_transfer_ns(self) -> float:
        return self._line_transfer_const

    @property
    def unloaded_mem_latency_ns(self) -> float:
        """DRAM access latency with an idle bus and idle banks."""
        return self._unloaded_const

    def sustainable_traffic_bytes_per_s(self) -> float:
        """Hard ceiling on off-chip traffic: bus bandwidth or bank service.

        Eight banks at 45 ns can source at most ``banks / access_latency``
        line fills per second; the bus moves at most its bandwidth.  The
        queueing model inflates latency as these are approached, but a
        latency cap keeps it finite, so a saturated system needs this
        explicit ceiling as well.
        """
        dram = self.uncore.dram
        bank_fills_per_s = dram.num_banks / (dram.access_latency_ns * 1e-9)
        bank_bytes = bank_fills_per_s * self.uncore.llc.line_bytes * WRITEBACK_TRAFFIC_FACTOR
        return MAX_UTILIZATION * min(dram.bus_bandwidth_bytes_per_s, bank_bytes)

    def _loaded_mem_latency_ns(self, traffic_bytes_per_s: float) -> float:
        """Memory latency at a given off-chip traffic level (M/D/1 queues).

        Runs once per bisection round per chip; every uncore-derived term is
        a constant prebound in ``__init__`` with the op order preserved, so
        the returned floats are bit-identical to the inline expressions.
        """
        rho_bus = min(MAX_UTILIZATION, traffic_bytes_per_s / self._bus_bw)
        bus_wait = self._half_line_transfer * rho_bus / (1.0 - rho_bus)

        accesses_per_s = traffic_bytes_per_s / self._line_wb_bytes
        rho_bank = min(
            MAX_UTILIZATION,
            accesses_per_s * self._bank_service_ns * 1e-9 / self._num_banks,
        )
        bank_wait = self._half_bank_service * rho_bank / (1.0 - rho_bank)

        return self._unloaded_const + bus_wait + bank_wait

    # ------------------------------------------------------------------ #
    # cache partitioning                                                  #
    # ------------------------------------------------------------------ #

    def _private_cache_shares(
        self, core: CoreConfig, threads: Sequence[ThreadSpec]
    ) -> Tuple[List[float], List[float], List[float]]:
        """(l1i, l1d, l2) per-thread byte shares on one core."""
        duties = [t.duty_cycle for t in threads]
        l1i_w = [t.profile.icurve.mpki(core.l1i.size_bytes) + 1e-3 for t in threads]
        l1d_w = [t.profile.dcurve.mpki(core.l1d.size_bytes) + 1e-3 for t in threads]
        l2_w = [t.profile.dcurve.mpki(core.l2.size_bytes) + 1e-3 for t in threads]
        return (
            _demand_shares(core.l1i.size_bytes, l1i_w, duties),
            _demand_shares(core.l1d.size_bytes, l1d_w, duties),
            _demand_shares(core.l2.size_bytes, l2_w, duties),
        )

    def _llc_shares(self, placement: Placement) -> List[List[float]]:
        """Per-core lists of per-thread LLC byte shares (chip-wide sharing)."""
        all_weights: List[float] = []
        all_duties: List[float] = []
        for threads in placement.core_threads:
            for t in threads:
                if self.llc_sharing == "demand":
                    all_weights.append(t.profile.cache_pressure(1 * MB))
                else:
                    all_weights.append(1.0)
                all_duties.append(t.duty_cycle)
        flat = _demand_shares(self.uncore.llc.size_bytes, all_weights, all_duties)
        shares: List[List[float]] = []
        pos = 0
        for threads in placement.core_threads:
            shares.append(flat[pos : pos + len(threads)])
            pos += len(threads)
        return shares

    # ------------------------------------------------------------------ #
    # fixed-point evaluation                                              #
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        placement: Placement,
        smt: bool = True,
        mem_latency_hint_ns: Optional[float] = None,
    ) -> ChipResult:
        """Solve the chip for ``placement`` and return per-thread performance.

        ``smt`` only controls placement validation (hardware context bounds);
        the duty cycles inside the placement already encode time-sharing.

        ``mem_latency_hint_ns`` optionally warm-starts the latency bisection
        from a nearby already-solved operating point (same design, adjacent
        thread count).  The descended bracket is *certified* before use, so
        a hint — right, wrong or stale — can only save evaluations, never
        change the converged result: warm and cold solves are bit-identical.

        When observability is off (the default) this delegates straight to
        the solver; the instrumented path adds an ``interval.model`` span
        (with cache-share and DRAM-contention sub-spans from the solver)
        plus solver counters and per-component CPI histograms.
        """
        if not TRACER.enabled and not METRICS.enabled:
            return self._dispatch_solve(placement, smt, mem_latency_hint_ns)
        with TRACER.span(
            "interval.model",
            cat="interval",
            design=self.design.name,
            threads=placement.num_threads,
            smt=smt,
        ) as span:
            result = self._dispatch_solve(placement, smt, mem_latency_hint_ns)
            span.set(
                iterations=result.iterations,
                mem_latency_ns=round(result.mem_latency_ns, 3),
                bus_utilization=round(result.bus_utilization, 4),
            )
        if METRICS.enabled:
            self._record_metrics(result)
        return result

    def _dispatch_solve(
        self, placement: Placement, smt: bool, hint: Optional[float]
    ) -> ChipResult:
        """Route to the solver implementation selected by $REPRO_INTERVAL_SOLVER."""
        mode = _solver_mode()
        if mode == "scalar":
            return self._solve(placement, smt)
        if mode == "verify":
            vector = self._solve_vectorized(placement, smt, hint)
            _assert_solver_parity(vector, self._solve(placement, smt))
            return vector
        return self._solve_vectorized(placement, smt, hint)

    def _record_metrics(self, result: ChipResult) -> None:
        """Solver counters and CPI-component histograms for one solve.

        CPI components are observed once per solve from the *final* core
        results, not per bisection step — the distribution reflects solved
        operating points, and the volume stays bounded.
        """
        METRICS.inc("interval.solves")
        METRICS.inc("interval.solve_iterations", result.iterations)
        METRICS.observe("interval.solver.iterations", float(result.iterations))
        METRICS.observe("interval.mem_latency_inflation", result.mem_latency_inflation)
        METRICS.observe("interval.bus_utilization", result.bus_utilization)
        for core_result in result.core_results:
            for perf in core_result.threads:
                for component, value in perf.cpi_breakdown.items():
                    METRICS.observe(f"interval.cpi.{component}", value)

    def _solve(self, placement: Placement, smt: bool = True) -> ChipResult:
        """Golden scalar reference solver (pure-Python fixed point).

        The vectorized solver (:meth:`_solve_vectorized`) is bit-identical
        to this by construction and by test; this path stays in the tree as
        the reference, as the ICOUNT-SMT fallback and as the
        ``$REPRO_INTERVAL_SOLVER=scalar`` escape hatch.
        """
        placement.validate_against(self.design, smt)
        llc_lat_ns = self._llc_latency_ns
        with TRACER.span("interval.cache-shares", cat="interval"):
            llc_shares, private_shares = self._cache_share_lists(placement)
        run_cores = self._run_cores_fn(
            placement, llc_shares, private_shares, llc_lat_ns
        )

        # The loaded latency induced by the traffic generated at latency L is
        # strictly decreasing in L (more latency -> less traffic -> less
        # queueing), so g(L) = loaded(traffic(L)) - L has a unique root:
        # bisect between the unloaded latency and the queueing-model maximum.
        with TRACER.span("interval.dram-contention", cat="interval") as dram_span:
            lo = self.unloaded_mem_latency_ns
            hi = self._loaded_mem_latency_ns(float("inf"))
            core_results, traffic = run_cores(lo)
            iterations = 1
            if self._loaded_mem_latency_ns(traffic) <= lo + CONVERGENCE_NS:
                mem_lat_ns = lo  # bus effectively unloaded: no contention
            else:
                core_results, traffic, mem_lat_ns, iterations = (
                    self._bisect_scalar(run_cores, lo, hi)
                )
            dram_span.set(iterations=iterations)
        return self._finalize(placement, core_results, mem_lat_ns, iterations)

    def _cache_share_lists(
        self, placement: Placement
    ) -> Tuple[List[List[float]], List[Tuple[List[float], List[float], List[float]]]]:
        """(llc, private) per-core share lists for ``placement``."""
        llc_shares = self._llc_shares(placement)
        private_shares = [
            self._private_cache_shares(core, threads)
            for core, threads in zip(self.design.cores, placement.core_threads)
        ]
        return llc_shares, private_shares

    def _run_cores_fn(
        self,
        placement: Placement,
        llc_shares: List[List[float]],
        private_shares: List[Tuple[List[float], List[float], List[float]]],
        llc_lat_ns: float,
    ):
        design = self.design

        def run_cores(mem_lat_ns: float) -> Tuple[List[CoreResult], float]:
            """Evaluate every core at a trial memory latency; return traffic."""
            results: List[CoreResult] = []
            traffic = 0.0
            for idx, (core, threads) in enumerate(
                zip(design.cores, placement.core_threads)
            ):
                if not threads:
                    results.append(CoreResult(threads=(), utilization=0.0))
                    continue
                l1i_s, l1d_s, l2_s = private_shares[idx]
                env = CoreEnvironment(
                    l1i_share_bytes=tuple(l1i_s),
                    l1d_share_bytes=tuple(l1d_s),
                    l2_share_bytes=tuple(l2_s),
                    llc_share_bytes=tuple(llc_shares[idx]),
                    llc_latency_cycles=llc_lat_ns * core.frequency_ghz,
                    mem_latency_cycles=mem_lat_ns * core.frequency_ghz,
                )
                result = self._core_models[idx].evaluate(
                    [t.profile for t in threads],
                    env,
                    duty_cycles=[t.duty_cycle for t in threads],
                )
                results.append(result)
                cycles_per_s = core.frequency_ghz * 1e9
                for perf in result.threads:
                    traffic += (
                        perf.ipc
                        * cycles_per_s
                        * perf.mem_misses_per_instr
                        * self.uncore.llc.line_bytes
                        * WRITEBACK_TRAFFIC_FACTOR
                    )
            return results, traffic

        return run_cores

    def _bisect_scalar(
        self, run_cores, lo: float, hi: float
    ) -> Tuple[List[CoreResult], float, float, int]:
        """The reference bisection loop (every step through ``run_cores``)."""
        for iterations in range(2, BISECTION_STEPS + 2):
            mid = 0.5 * (lo + hi)
            core_results, traffic = run_cores(mid)
            induced = self._loaded_mem_latency_ns(traffic)
            if (
                abs(induced - mid) < CONVERGENCE_NS
                or hi - lo < CONVERGENCE_NS
            ):
                break
            if induced > mid:
                lo = mid
            else:
                hi = mid
        mem_lat_ns = 0.5 * (lo + hi)
        core_results, traffic = run_cores(mem_lat_ns)
        return core_results, traffic, mem_lat_ns, iterations

    def _finalize(
        self,
        placement: Placement,
        core_results: List[CoreResult],
        mem_lat_ns: float,
        iterations: int,
    ) -> ChipResult:
        """Materialize a :class:`ChipResult` from solved core results."""
        design = self.design
        # The queueing model's latency cap cannot throttle a deeply
        # overloaded memory system (many high-MLP threads tolerate the
        # capped latency), so enforce the physical throughput ceiling:
        # sustained traffic cannot exceed what the bus and banks can move.
        # The overload manifests as extra queueing delay per miss, solved so
        # that traffic meets the ceiling — threads that rarely miss are
        # (correctly) unaffected.
        rates: List[float] = []  # instructions/second per thread
        miss_rates: List[float] = []  # misses/instruction per thread
        for core, result in zip(design.cores, core_results):
            cycles_per_s = core.frequency_ghz * 1e9
            for perf in result.threads:
                rates.append(perf.ipc * cycles_per_s)
                miss_rates.append(perf.mem_misses_per_instr)
        bytes_per_miss = self.uncore.llc.line_bytes * WRITEBACK_TRAFFIC_FACTOR

        def traffic_with_delay(extra_s_per_miss: float) -> float:
            total = 0.0
            for rate, mpi in zip(rates, miss_rates):
                throttled = rate / (1.0 + rate * mpi * extra_s_per_miss)
                total += throttled * mpi * bytes_per_miss
            return total

        ceiling = self.sustainable_traffic_bytes_per_s()
        delay_s = 0.0
        if traffic_with_delay(0.0) > ceiling:
            lo_d, hi_d = 0.0, 1e-3  # up to 1 ms of queueing per miss
            for _ in range(50):
                mid_d = 0.5 * (lo_d + hi_d)
                if traffic_with_delay(mid_d) > ceiling:
                    lo_d = mid_d
                else:
                    hi_d = mid_d
            delay_s = hi_d

        outcomes: List[ThreadOutcome] = []
        final_traffic = 0.0
        flat = 0
        for idx, (core, threads, result) in enumerate(
            zip(design.cores, placement.core_threads, core_results)
        ):
            cycles_per_s = core.frequency_ghz * 1e9
            for spec, perf in zip(threads, result.threads):
                rate = rates[flat] / (
                    1.0 + rates[flat] * miss_rates[flat] * delay_s
                )
                flat += 1
                outcomes.append(
                    ThreadOutcome(
                        core_index=idx,
                        benchmark=spec.profile.name,
                        ipc=rate / cycles_per_s,
                        ips=rate,
                        duty_cycle=spec.duty_cycle,
                    )
                )
                final_traffic += rate * perf.mem_misses_per_instr * bytes_per_miss
        bus_util = min(
            1.0, final_traffic / self.uncore.dram.bus_bandwidth_bytes_per_s
        )
        return ChipResult(
            design_name=design.name,
            threads=tuple(outcomes),
            core_results=tuple(core_results),
            core_utilizations=tuple(r.utilization for r in core_results),
            mem_latency_ns=mem_lat_ns,
            unloaded_mem_latency_ns=self.unloaded_mem_latency_ns,
            bus_utilization=bus_util,
            iterations=iterations,
        )

    # ------------------------------------------------------------------ #
    # vectorized solver                                                   #
    # ------------------------------------------------------------------ #

    def _solve_vectorized(
        self,
        placement: Placement,
        smt: bool = True,
        mem_latency_hint_ns: Optional[float] = None,
    ) -> ChipResult:
        """NumPy batch solver: one scalar evaluation, vectorized bisection.

        The entire fixed point — the unloaded-shortcut test at the lower
        endpoint and every bisection midpoint — runs through the flat batch
        kernel, which computes chip traffic for all threads at once from
        latency-independent statics.  Only the *converged* latency gets a
        scalar model evaluation, to materialize the per-thread results.
        Identical inputs and identical elementwise arithmetic make the
        result bit-identical to :meth:`_solve`.
        """
        solve = self._prepare_solve(placement, smt, mem_latency_hint_ns)
        with TRACER.span("interval.dram-contention", cat="interval") as dram_span:
            self._finish_bisection(solve)
            dram_span.set(iterations=solve.iterations)
        return self._finalize(
            placement, solve.core_results, solve.mem_lat_ns, solve.iterations
        )

    def _prepare_solve(
        self, placement: Placement, smt: bool, hint: Optional[float]
    ) -> "_ActiveSolve":
        """Validate, partition caches and build the batch statics.

        Kernel-capable solves do *no* scalar model evaluation here: the
        latency-independent statics come straight from
        :meth:`IntervalCoreModel.batch_statics` (same arithmetic, same
        validation as the scalar path), and the unloaded-shortcut test runs
        through the batch kernel as the first lockstep round.  Placements
        that need the scalar loop (ICOUNT with SMT) fall back to the
        scalar lower-endpoint evaluation and shortcut test instead
        (``statics=None``).
        """
        placement.validate_against(self.design, smt)
        llc_lat_ns = self._llc_latency_ns
        with TRACER.span("interval.cache-shares", cat="interval"):
            llc_shares, private_shares = self._cache_share_lists(placement)
        run_cores = self._run_cores_fn(
            placement, llc_shares, private_shares, llc_lat_ns
        )
        lo = self.unloaded_mem_latency_ns
        hi = self._loaded_mem_latency_ns(float("inf"))
        solve = _ActiveSolve(self, run_cores, lo, hi, hint)
        statics = self._solve_statics(
            placement, llc_shares, private_shares, llc_lat_ns, lo
        )
        if statics is None:  # ICOUNT SMT: scalar endpoint + shortcut test
            core_results, traffic = run_cores(lo)
            solve.core_results = core_results
            solve.evals = 1
            if self._loaded_mem_latency_ns(traffic) <= lo + CONVERGENCE_NS:
                solve.mem_lat_ns = lo  # bus effectively unloaded
        else:
            solve.statics = statics
        return solve

    def _finish_bisection(self, solve: "_ActiveSolve") -> None:
        """Run the bisection for one prepared solve (kernel or scalar)."""
        if solve.statics is not None:
            _bisect_many([solve])  # includes the unloaded-shortcut round
            solve.core_results, _ = solve.run_cores(solve.mem_lat_ns)
        elif solve.mem_lat_ns is None:  # ICOUNT SMT: scalar loop
            solve.core_results, _, solve.mem_lat_ns, solve.iterations = (
                self._bisect_scalar(solve.run_cores, solve.lo, solve.hi)
            )

    def _solve_statics(
        self,
        placement: Placement,
        llc_shares: List[List[float]],
        private_shares: List[Tuple[List[float], List[float], List[float]]],
        llc_lat_ns: float,
        lo: float,
    ) -> Optional[List[CoreBatchStatics]]:
        """Per-core batch statics for the kernel, or None when unsupported.

        Builds each core's environment exactly as ``run_cores`` does (the
        memory latency passed is irrelevant to the statics — every lifted
        component is latency-independent) and derives the statics through
        the same `_thread_static_terms` helper the scalar path uses, so no
        scalar core evaluation is needed.
        """
        statics: List[CoreBatchStatics] = []
        for idx, (core, threads) in enumerate(
            zip(self.design.cores, placement.core_threads)
        ):
            if not threads:
                continue
            l1i_s, l1d_s, l2_s = private_shares[idx]
            env = CoreEnvironment(
                l1i_share_bytes=tuple(l1i_s),
                l1d_share_bytes=tuple(l1d_s),
                l2_share_bytes=tuple(l2_s),
                llc_share_bytes=tuple(llc_shares[idx]),
                llc_latency_cycles=llc_lat_ns * core.frequency_ghz,
                mem_latency_cycles=lo * core.frequency_ghz,
            )
            st = self._core_models[idx].batch_statics(
                [t.profile for t in threads],
                env,
                [t.duty_cycle for t in threads],
            )
            if st is None:
                return None
            statics.append(st)
        return statics


def isolated_ips(
    profile: BenchmarkProfile,
    core: CoreConfig = BIG,
    uncore: UncoreConfig = DEFAULT_UNCORE,
) -> float:
    """Instructions per second of ``profile`` running alone on one ``core``.

    The single thread owns all private caches and the whole LLC; bus and
    bank queueing still apply (a lone bandwidth-bound thread does load the
    bus).  This is the reference the paper normalizes STP and ANTT against
    (isolated execution on the big core).
    """
    if METRICS.enabled:
        METRICS.inc("interval.isolated_ips_evals")
    design = ChipDesign(name=f"iso-{core.name}", cores=(core,), uncore=uncore)
    placement = Placement.from_lists([[ThreadSpec(profile)]])
    result = ChipModel(design).evaluate(placement)
    return result.threads[0].ips


# ---------------------------------------------------------------------- #
# batch solver machinery                                                  #
# ---------------------------------------------------------------------- #


class _ActiveSolve:
    """Per-solve bookkeeping for the lockstep batch bisection."""

    __slots__ = (
        "model", "run_cores", "core_results", "statics", "lo", "hi", "hint",
        "mem_lat_ns", "iterations", "it", "mid", "warm_depth",
        "warm_rejected", "evals",
    )

    def __init__(self, model, run_cores, lo, hi, hint):
        self.model = model
        self.run_cores = run_cores
        self.core_results: Optional[List[CoreResult]] = None
        self.statics: Optional[List[CoreBatchStatics]] = None
        self.lo = lo
        self.hi = hi
        self.hint = hint
        self.mem_lat_ns: Optional[float] = None
        self.iterations = 1
        self.it = 2  # the scalar loop counter this solve resumes from
        self.mid = lo
        self.warm_depth = 0
        self.warm_rejected = False
        self.evals = 0  # full-chip traffic evaluations (kernel or scalar)


def _warm_bracket(lo: float, hi: float, hint: float) -> Tuple[float, float, int]:
    """Descend the cold-bisection midpoint lattice toward ``hint``.

    Replicates the exact float arithmetic (``mid = 0.5 * (lo + hi)``) and
    halving structure cold bisection would produce, always choosing the
    half that contains the hint.  Descent stops while the cell is still
    wide (>= 8x the convergence tolerance, so a certified cell keeps every
    skipped ancestor midpoint at least 8 tolerances away from the root,
    where cold bisection can neither early-exit nor branch differently)
    and while the hint keeps a safety margin from both walls (a hint close
    to a wall suggests the root may sit on the other side, which the
    certification step would then reject).  The depth cap stays far below
    BISECTION_STEPS, so a resumed loop always has iterations left.
    """
    depth = 0
    while depth < 30:
        mid = 0.5 * (lo + hi)
        if hint > mid:
            new_lo, new_hi = mid, hi
        else:
            new_lo, new_hi = lo, mid
        width = new_hi - new_lo
        if width < 8.0 * CONVERGENCE_NS:
            break
        margin = max(4.0 * CONVERGENCE_NS, 0.25 * width)
        if hint - new_lo < margin or new_hi - hint < margin:
            break
        lo, hi = new_lo, new_hi
        depth += 1
    return lo, hi, depth


class _BatchTrafficKernel:
    """Flat elementwise kernel: chip traffic at a trial latency, per solve.

    One instance concatenates the threads of many chip solves (same or
    different designs) into flat NumPy vectors; ``traffic_many`` then
    reproduces what each solve's ``run_cores(L)`` would return as traffic —
    bit-for-bit.  Two rules make that exact: every *elementwise* float64
    operation maps one-to-one onto the scalar expression (IEEE-identical),
    and every *reduction* (per-core demand sums, the chip traffic chain)
    runs as a sequential Python loop in scalar flat order, because NumPy's
    pairwise summation and ``np.power`` are not bit-identical to Python's
    ``sum`` and ``**``.
    """

    __slots__ = (
        "_n", "_counts", "_freq", "_mpi", "_mlp", "_static", "_duty",
        "_memfrac", "_nonmemfrac", "_busy", "_has_inorder", "_blocks",
        "_mpi_list", "_k1_idx", "_k1_ooo", "_k1_pipe_den", "_k1_ldst_den",
        "_k1_alu_den", "_k1_cps", "_k1_line",
    )

    def __init__(self, solves: Sequence[_ActiveSolve]):
        blocks = []
        counts = []
        # Flat Python lists first, one np.array per field at the end:
        # array construction is paid once per batch, not once per core.
        freq_l: List[float] = []
        mpi_l: List[float] = []
        mlp_l: List[float] = []
        static_l: List[float] = []
        duty_l: List[float] = []
        memfrac_l: List[float] = []
        nonmemfrac_l: List[float] = []
        busy_l: List[float] = []
        # Single-thread cores dominate real placements (threads spread
        # across cores before they stack); their demand "sums" are the lone
        # element, so the whole block reduces to elementwise arithmetic.
        # Collect them once and the kernel evaluates every such core with a
        # handful of NumPy ops instead of four Python loops per block.
        k1_idx: List[int] = []
        k1_ooo: List[bool] = []
        k1_pipe_den: List[float] = []
        k1_ldst_den: List[float] = []
        k1_alu_den: List[float] = []
        k1_cps: List[float] = []
        k1_line: List[float] = []
        pos = 0
        for sidx, solve in enumerate(solves):
            line_bytes = solve.model.uncore.llc.line_bytes
            total = 0
            for st in solve.statics:
                k = st.n_threads
                if k == 1:
                    k1_slot = len(k1_idx)
                    k1_idx.append(pos)
                    k1_ooo.append(st.is_out_of_order)
                    k1_pipe_den.append(st.pipe_denominator)
                    k1_ldst_den.append(st.ldst_denominator)
                    k1_alu_den.append(st.alu_denominator)
                    k1_cps.append(st.frequency_ghz * 1e9)
                    k1_line.append(line_bytes)
                else:
                    k1_slot = -1
                blocks.append((
                    pos, pos + k, st.is_out_of_order, st.pipe_denominator,
                    st.ldst_denominator, st.alu_denominator,
                    st.frequency_ghz * 1e9, sidx, line_bytes, k1_slot,
                ))
                freq_l.extend([st.frequency_ghz] * k)
                mpi_l.extend(st.dram_mpi)
                mlp_l.extend(st.mlp)
                static_l.extend(st.static_cpi)
                duty_l.extend(st.duty_cycle)
                memfrac_l.extend(st.mem_frac)
                nonmemfrac_l.extend(st.nonmem_frac)
                busy_l.extend(st.busy_cpi)
                pos += k
                total += k
            counts.append(total)
        self._n = len(solves)
        self._counts = np.array(counts)
        self._blocks = blocks
        as_array = lambda xs: np.array(xs, dtype=np.float64)  # noqa: E731
        self._freq = as_array(freq_l)
        self._mpi = as_array(mpi_l)
        self._mlp = as_array(mlp_l)
        self._static = as_array(static_l)
        self._duty = as_array(duty_l)
        self._memfrac = as_array(memfrac_l)
        self._nonmemfrac = as_array(nonmemfrac_l)
        self._busy = as_array(busy_l)
        self._has_inorder = any(not b[2] for b in blocks)
        self._mpi_list = mpi_l
        self._k1_idx = np.array(k1_idx, dtype=np.intp)
        self._k1_ooo = np.array(k1_ooo, dtype=bool)
        self._k1_pipe_den = as_array(k1_pipe_den)
        self._k1_ldst_den = as_array(k1_ldst_den)
        self._k1_alu_den = as_array(k1_alu_den)
        self._k1_cps = as_array(k1_cps)
        self._k1_line = as_array(k1_line)

    def traffic_many(
        self,
        mem_lat_ns: Sequence[float],
        active: Optional[set] = None,
    ) -> List[float]:
        """Per-solve chip traffic at per-solve trial latencies.

        ``active`` optionally restricts the per-core reduction loops to the
        given solve indices (converged solves keep a stale latency in
        ``mem_lat_ns`` and their totals are unused, so skipping their
        blocks changes nothing but the wall time).
        """
        if self._n == 1:
            lat = mem_lat_ns[0] * self._freq
        else:
            lat = np.repeat(mem_lat_ns, self._counts) * self._freq
        # cpi(L) = static + mpi*L/mlp; rate = (1/cpi) * duty  [elementwise]
        cpi = self._static + (self._mpi * lat) / self._mlp
        rates = (1.0 / cpi) * self._duty
        ld_arr = rates * self._memfrac
        al_arr = rates * self._nonmemfrac
        bz_arr = rates * self._busy if self._has_inorder else rates
        rl = rates.tolist()
        ldl = ld_arr.tolist()
        al = al_arr.tolist()
        bzl = bz_arr.tolist() if self._has_inorder else rl
        # Single-thread blocks, all at once: every scalar expression below
        # maps onto one elementwise op (gathers only move values), so each
        # element is the float the per-block loops would have produced.
        if len(self._k1_idx):
            idx = self._k1_idx
            r1 = rates[idx]
            pipe = np.where(self._k1_ooo, r1, bz_arr[idx]) / self._k1_pipe_den
            ldst = ld_arr[idx] / self._k1_ldst_den
            alu = al_arr[idx] / self._k1_alu_den
            worst = np.maximum(np.maximum(pipe, ldst), alu)
            base = np.where(worst <= 1.0, r1, r1 * (1.0 / worst))
            k1_contrib = (
                ((base * self._k1_cps) * self._mpi[idx]) * self._k1_line
            ) * WRITEBACK_TRAFFIC_FACTOR
            k1l = k1_contrib.tolist()
        totals = [0.0] * self._n
        mpi_l = self._mpi_list
        wb = WRITEBACK_TRAFFIC_FACTOR
        for start, stop, is_ooo, pipe_den, ldst_den, alu_den, cps, sidx, line, k1 in (
            self._blocks
        ):
            if active is not None and sidx not in active:
                continue
            if k1 >= 0:
                totals[sidx] = totals[sidx] + k1l[k1]
                continue
            span = range(start, stop)
            acc = 0.0
            if is_ooo:
                for i in span:
                    acc += rl[i]
            else:
                for i in span:
                    acc += bzl[i]
            pipe = acc / pipe_den
            acc = 0.0
            for i in span:
                acc += ldl[i]
            ldst = acc / ldst_den
            acc = 0.0
            for i in span:
                acc += al[i]
            alu = acc / alu_den
            worst = max(pipe, ldst, alu)
            total = totals[sidx]
            if worst <= 1.0:  # scale 1.0: r * 1.0 == r bitwise
                for i in span:
                    total += rl[i] * cps * mpi_l[i] * line * wb
            else:
                scale = 1.0 / worst
                for i in span:
                    total += (rl[i] * scale) * cps * mpi_l[i] * line * wb
            totals[sidx] = total
        return totals


def _bisect_many(all_solves: Sequence[_ActiveSolve]) -> None:
    """Advance kernel-capable solves to their converged latency in lockstep.

    The first round evaluates every solve's traffic at its unloaded lower
    endpoint and applies the scalar path's shortcut test (bus effectively
    unloaded -> converged at ``lo`` with ``iterations == 1``).  One combined
    kernel then evaluates each remaining round's midpoints for all solves
    at once; the per-solve control flow replicates the scalar loop exactly
    (same float midpoints, same break conditions, same iteration-counter
    semantics), so converged latencies *and* reported iteration counts are
    bit-identical to cold scalar bisection — with or without warm-start
    hints.
    """
    kernel = _BatchTrafficKernel(all_solves)
    totals = kernel.traffic_many([s.lo for s in all_solves])
    solves: List[_ActiveSolve] = []
    for i, s in enumerate(all_solves):
        s.evals += 1
        if s.model._loaded_mem_latency_ns(totals[i]) <= s.lo + CONVERGENCE_NS:
            s.mem_lat_ns = s.lo  # bus effectively unloaded: no contention
        else:
            solves.append(s)
    if not solves:
        _observe_bisection_metrics(all_solves)
        return
    if len(solves) != len(all_solves):
        kernel = _BatchTrafficKernel(solves)  # drop finished solves' threads
    n = len(solves)

    # Warm start: dyadic descent toward each hint costs no evaluations;
    # two batched evaluations then certify the descended endpoints
    # (g(lo) >= tol and g(hi) <= -tol bracket the root and rule out any
    # behavioural difference from cold bisection at skipped midpoints).
    # Endpoints equal to the original bracket walls need no certification:
    # the failed shortcut already proved g > tol at the unloaded latency,
    # and the latency cap guarantees g <= 0 at the loaded maximum.
    descended: List[Optional[Tuple[float, float, int]]] = [None] * n
    for i, s in enumerate(solves):
        if s.hint is not None and s.lo < s.hint < s.hi:
            lo_w, hi_w, depth = _warm_bracket(s.lo, s.hi, s.hint)
            if depth:
                descended[i] = (lo_w, hi_w, depth)
    if any(descended):
        lo_ok = [d is not None for d in descended]
        lats = [d[0] if d else s.lo for d, s in zip(descended, solves)]
        totals = kernel.traffic_many(lats)
        for i, (d, s) in enumerate(zip(descended, solves)):
            if d and d[0] != s.lo:
                s.evals += 1
                g_lo = s.model._loaded_mem_latency_ns(totals[i]) - d[0]
                lo_ok[i] = g_lo >= CONVERGENCE_NS
        lats = [
            d[1] if (d and lo_ok[i]) else s.lo
            for i, (d, s) in enumerate(zip(descended, solves))
        ]
        totals = kernel.traffic_many(lats)
        for i, (d, s) in enumerate(zip(descended, solves)):
            if not d:
                continue
            certified = lo_ok[i]
            if certified and d[1] != s.hi:
                s.evals += 1
                g_hi = s.model._loaded_mem_latency_ns(totals[i]) - d[1]
                certified = g_hi <= -CONVERGENCE_NS
            s.warm_depth = d[2]
            if certified:
                s.lo, s.hi = d[0], d[1]
                s.it = d[2] + 2  # resume the loop counter past the descent
            else:
                s.warm_rejected = True  # cold bracket: results unaffected

    active = list(range(n))
    lats = [s.lo for s in solves]
    while active:
        for i in active:
            s = solves[i]
            s.mid = 0.5 * (s.lo + s.hi)
            lats[i] = s.mid
        totals = kernel.traffic_many(
            lats, set(active) if len(active) < n else None
        )
        nxt = []
        for i in active:
            s = solves[i]
            s.evals += 1
            induced = s.model._loaded_mem_latency_ns(totals[i])
            mid = s.mid
            s.iterations = s.it
            if (
                abs(induced - mid) < CONVERGENCE_NS
                or s.hi - s.lo < CONVERGENCE_NS
            ):
                s.mem_lat_ns = 0.5 * (s.lo + s.hi)  # == mid, bitwise
            else:
                if induced > mid:
                    s.lo = mid
                else:
                    s.hi = mid
                if s.it == BISECTION_STEPS + 1:  # scalar loop exhausted
                    s.mem_lat_ns = 0.5 * (s.lo + s.hi)
                else:
                    s.it += 1
                    nxt.append(i)
        active = nxt

    _observe_bisection_metrics(all_solves)


def _observe_bisection_metrics(solves: Sequence[_ActiveSolve]) -> None:
    if not METRICS.enabled:
        return
    for s in solves:
        if s.warm_depth and not s.warm_rejected:
            METRICS.inc("interval.solver.warm_hits")
        elif s.warm_rejected:
            METRICS.inc("interval.solver.warm_rejected")
        METRICS.observe("interval.solver.evals", float(s.evals))


def _assert_solver_parity(vector: ChipResult, scalar: ChipResult) -> None:
    if vector != scalar:
        raise AssertionError(
            f"vectorized solver diverged from the scalar reference on "
            f"{scalar.design_name}: mem_latency_ns {vector.mem_latency_ns!r} "
            f"vs {scalar.mem_latency_ns!r}, iterations {vector.iterations} "
            f"vs {scalar.iterations}"
        )


def evaluate_batch(
    requests: Sequence[
        Tuple[ChipModel, Placement, bool, Optional[float]]
    ],
) -> List[ChipResult]:
    """Solve many placements in lockstep through one shared batch kernel.

    Each request is ``(model, placement, smt, mem_latency_hint_ns)``; models
    may belong to different designs.  Results are index-aligned with the
    requests and bit-identical to calling ``model.evaluate(...)`` per point
    — per-point spans (``interval.model``, ``interval.cache-shares``) and
    metrics are preserved; the lockstep bisection itself runs under a
    single shared ``interval.dram-contention`` span.  Honors
    ``$REPRO_INTERVAL_SOLVER`` like :meth:`ChipModel.evaluate`.
    """
    mode = _solver_mode()
    if mode == "scalar":
        return [
            model.evaluate(placement, smt)
            for model, placement, smt, _hint in requests
        ]
    instrumented = TRACER.enabled or METRICS.enabled
    solves: List[_ActiveSolve] = []
    for model, placement, smt, hint in requests:
        if instrumented:
            with TRACER.span(
                "interval.model",
                cat="interval",
                design=model.design.name,
                threads=placement.num_threads,
                smt=smt,
                batched=True,
            ):
                solves.append(model._prepare_solve(placement, smt, hint))
        else:
            solves.append(model._prepare_solve(placement, smt, hint))
    lockstep = [
        s for s in solves if s.mem_lat_ns is None and s.statics is not None
    ]
    if lockstep:
        with TRACER.span(
            "interval.dram-contention", cat="interval", points=len(lockstep)
        ) as dram_span:
            _bisect_many(lockstep)
            dram_span.set(
                iterations=max(s.iterations for s in lockstep)
            )
        for s in lockstep:
            s.core_results, _ = s.run_cores(s.mem_lat_ns)
    results: List[ChipResult] = []
    for (model, placement, smt, _hint), s in zip(requests, solves):
        if s.mem_lat_ns is None:  # ICOUNT SMT fallback: scalar loop
            s.core_results, _, s.mem_lat_ns, s.iterations = (
                model._bisect_scalar(s.run_cores, s.lo, s.hi)
            )
        result = model._finalize(
            placement, s.core_results, s.mem_lat_ns, s.iterations
        )
        if METRICS.enabled:
            model._record_metrics(result)
        results.append(result)
    if mode == "verify":
        for (model, placement, smt, _hint), result in zip(requests, results):
            _assert_solver_parity(result, model._solve(placement, smt))
    return results

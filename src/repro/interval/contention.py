"""Chip-level model: shared caches, off-chip bus and DRAM-bank contention.

:class:`ChipModel` evaluates a full chip design with a given placement of
threads on cores.  It combines the per-core interval models
(:mod:`repro.interval.model`) with three shared-resource effects the paper
identifies as decisive at high thread counts (Section 4.1):

* **shared-cache capacity** — co-resident threads partition each cache level
  in proportion to their demand (miss pressure at that capacity), so a
  memory-intensive program co-scheduled with compute-intensive programs on
  an SMT core occupies most of the private L2 — the effect that lets the 4B
  design use cache "more efficiently through intelligent scheduling";
* **off-chip bus queueing** — an M/D/1-style queue on the 8 GB/s (or
  16 GB/s) bus inflates memory latency as utilization grows, which is what
  flattens the design space for bandwidth-bound workloads (libquantum's
  4x memory-latency inflation at 24 threads);
* **DRAM bank pressure** — eight banks bound the service rate behind the bus.

Because per-thread IPC determines traffic and traffic determines latency,
the solver iterates to a fixed point with damping.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.designs import ChipDesign
from repro.interval.model import CoreEnvironment, CoreResult, IntervalCoreModel
from repro.microarch.config import BIG, CoreConfig
from repro.microarch.uncore import DEFAULT_UNCORE, UncoreConfig
from repro.obs import METRICS, TRACER
from repro.util import MB, check_fraction
from repro.workloads.profiles import BenchmarkProfile

#: Dirty-line writebacks add traffic on top of demand fills.
WRITEBACK_TRAFFIC_FACTOR = 1.3

#: Utilization cap that keeps the queueing model finite.
MAX_UTILIZATION = 0.98

#: Bisection controls for the latency fixed point.
BISECTION_STEPS = 40
CONVERGENCE_NS = 0.01


@dataclass(frozen=True)
class ThreadSpec:
    """One software thread to be placed on a hardware context.

    ``duty_cycle`` < 1 models time-sharing: in no-SMT mode with more active
    threads than cores, each thread on a core runs a fraction of the time.
    """

    profile: BenchmarkProfile
    duty_cycle: float = 1.0

    def __post_init__(self) -> None:
        check_fraction("duty_cycle", self.duty_cycle)
        if self.duty_cycle == 0.0:
            raise ValueError("duty_cycle must be > 0")


@dataclass(frozen=True)
class Placement:
    """Threads assigned to each core of a design (index-aligned with cores)."""

    core_threads: Tuple[Tuple[ThreadSpec, ...], ...]

    @classmethod
    def from_lists(cls, core_threads: Sequence[Sequence[ThreadSpec]]) -> "Placement":
        return cls(tuple(tuple(ts) for ts in core_threads))

    @property
    def num_threads(self) -> int:
        return sum(len(ts) for ts in self.core_threads)

    def validate_against(self, design: ChipDesign, smt: bool) -> None:
        """Raise if the placement is infeasible on ``design``.

        Without SMT a core still holds multiple *time-shared* threads, so the
        per-core bound is only checked in SMT mode (contexts are a hardware
        limit; time-sharing is not).
        """
        if len(self.core_threads) != design.num_cores:
            raise ValueError(
                f"placement has {len(self.core_threads)} core slots, design "
                f"{design.name} has {design.num_cores} cores"
            )
        if smt:
            for core, threads in zip(design.cores, self.core_threads):
                if len(threads) > core.max_smt_contexts:
                    raise ValueError(
                        f"{core.name} core supports {core.max_smt_contexts} "
                        f"SMT contexts, placement assigns {len(threads)}"
                    )


@dataclass(frozen=True)
class ThreadOutcome:
    """Chip-level performance of one thread."""

    core_index: int
    benchmark: str
    ipc: float  # instructions per core cycle, duty-scaled
    ips: float  # instructions per second, duty-scaled
    duty_cycle: float


@dataclass(frozen=True)
class ChipResult:
    """Outcome of a chip evaluation at the solved fixed point."""

    design_name: str
    threads: Tuple[ThreadOutcome, ...]
    core_results: Tuple[CoreResult, ...]
    core_utilizations: Tuple[float, ...]
    mem_latency_ns: float
    unloaded_mem_latency_ns: float
    bus_utilization: float
    iterations: int

    @property
    def total_ips(self) -> float:
        return sum(t.ips for t in self.threads)

    @property
    def mem_latency_inflation(self) -> float:
        """Loaded over unloaded memory latency (libquantum hits ~4x)."""
        return self.mem_latency_ns / self.unloaded_mem_latency_ns


def _demand_shares(
    capacity: float, weights: Sequence[float], duties: Sequence[float]
) -> List[float]:
    """Demand-proportional capacity shares with residency weighting.

    When all duty cycles are 1 this is plain proportional sharing
    ``capacity * w_i / sum(w)``.  A time-shared thread (duty < 1) is absent
    most of the time, so its co-residents see more capacity and it sees
    nearly the whole cache while it runs (minus a cold-footprint effect
    captured by the residual term).
    """
    if not weights:
        return []
    pressure = sum(w * d for w, d in zip(weights, duties))
    shares = []
    for w, d in zip(weights, duties):
        co_resident_pressure = pressure - w * d + w
        shares.append(capacity * w / co_resident_pressure)
    return shares


class ChipModel:
    """Evaluates thread placements on a chip design at a solved fixed point.

    ``llc_sharing`` selects the shared-cache capacity model:
    ``"demand"`` (default) partitions the LLC in proportion to each
    thread's miss pressure — what an LRU-managed shared cache converges to;
    ``"even"`` splits it equally regardless of demand, an ablation that
    removes the cache-usage advantage the paper attributes to intelligent
    SMT co-scheduling.  ``rob_partitioning`` is forwarded to the per-core
    interval models (see :class:`~repro.interval.model.IntervalCoreModel`).
    """

    def __init__(
        self,
        design: ChipDesign,
        llc_sharing: str = "demand",
        rob_partitioning: str = "static",
        fetch_policy: str = "roundrobin",
    ):
        if llc_sharing not in ("demand", "even"):
            raise ValueError(
                f"llc_sharing must be 'demand' or 'even', got {llc_sharing!r}"
            )
        self.design = design
        self.uncore: UncoreConfig = design.uncore
        self.llc_sharing = llc_sharing
        self._core_models = [
            IntervalCoreModel(core, rob_partitioning, fetch_policy)
            for core in design.cores
        ]

    # ------------------------------------------------------------------ #
    # latency building blocks (all in nanoseconds; converted per core)    #
    # ------------------------------------------------------------------ #

    @property
    def _llc_latency_ns(self) -> float:
        unc = self.uncore
        cycles = unc.llc.latency_cycles + 2 * unc.interconnect.hop_latency_cycles
        return cycles / unc.interconnect.frequency_ghz

    @property
    def _line_transfer_ns(self) -> float:
        line = self.uncore.llc.line_bytes
        return line / self.uncore.dram.bus_bandwidth_bytes_per_s * 1e9

    @property
    def unloaded_mem_latency_ns(self) -> float:
        """DRAM access latency with an idle bus and idle banks."""
        return (
            self._llc_latency_ns
            + self.uncore.dram.access_latency_ns
            + self._line_transfer_ns
        )

    def sustainable_traffic_bytes_per_s(self) -> float:
        """Hard ceiling on off-chip traffic: bus bandwidth or bank service.

        Eight banks at 45 ns can source at most ``banks / access_latency``
        line fills per second; the bus moves at most its bandwidth.  The
        queueing model inflates latency as these are approached, but a
        latency cap keeps it finite, so a saturated system needs this
        explicit ceiling as well.
        """
        dram = self.uncore.dram
        bank_fills_per_s = dram.num_banks / (dram.access_latency_ns * 1e-9)
        bank_bytes = bank_fills_per_s * self.uncore.llc.line_bytes * WRITEBACK_TRAFFIC_FACTOR
        return MAX_UTILIZATION * min(dram.bus_bandwidth_bytes_per_s, bank_bytes)

    def _loaded_mem_latency_ns(self, traffic_bytes_per_s: float) -> float:
        """Memory latency at a given off-chip traffic level (M/D/1 queues)."""
        dram = self.uncore.dram
        rho_bus = min(MAX_UTILIZATION, traffic_bytes_per_s / dram.bus_bandwidth_bytes_per_s)
        bus_wait = self._line_transfer_ns / 2.0 * rho_bus / (1.0 - rho_bus)

        accesses_per_s = traffic_bytes_per_s / (
            self.uncore.llc.line_bytes * WRITEBACK_TRAFFIC_FACTOR
        )
        bank_service_ns = dram.access_latency_ns
        rho_bank = min(
            MAX_UTILIZATION, accesses_per_s * bank_service_ns * 1e-9 / dram.num_banks
        )
        bank_wait = bank_service_ns / 2.0 * rho_bank / (1.0 - rho_bank)

        return self.unloaded_mem_latency_ns + bus_wait + bank_wait

    # ------------------------------------------------------------------ #
    # cache partitioning                                                  #
    # ------------------------------------------------------------------ #

    def _private_cache_shares(
        self, core: CoreConfig, threads: Sequence[ThreadSpec]
    ) -> Tuple[List[float], List[float], List[float]]:
        """(l1i, l1d, l2) per-thread byte shares on one core."""
        duties = [t.duty_cycle for t in threads]
        l1i_w = [t.profile.icurve.mpki(core.l1i.size_bytes) + 1e-3 for t in threads]
        l1d_w = [t.profile.dcurve.mpki(core.l1d.size_bytes) + 1e-3 for t in threads]
        l2_w = [t.profile.dcurve.mpki(core.l2.size_bytes) + 1e-3 for t in threads]
        return (
            _demand_shares(core.l1i.size_bytes, l1i_w, duties),
            _demand_shares(core.l1d.size_bytes, l1d_w, duties),
            _demand_shares(core.l2.size_bytes, l2_w, duties),
        )

    def _llc_shares(self, placement: Placement) -> List[List[float]]:
        """Per-core lists of per-thread LLC byte shares (chip-wide sharing)."""
        all_weights: List[float] = []
        all_duties: List[float] = []
        for threads in placement.core_threads:
            for t in threads:
                if self.llc_sharing == "demand":
                    all_weights.append(t.profile.cache_pressure(1 * MB))
                else:
                    all_weights.append(1.0)
                all_duties.append(t.duty_cycle)
        flat = _demand_shares(self.uncore.llc.size_bytes, all_weights, all_duties)
        shares: List[List[float]] = []
        pos = 0
        for threads in placement.core_threads:
            shares.append(flat[pos : pos + len(threads)])
            pos += len(threads)
        return shares

    # ------------------------------------------------------------------ #
    # fixed-point evaluation                                              #
    # ------------------------------------------------------------------ #

    def evaluate(self, placement: Placement, smt: bool = True) -> ChipResult:
        """Solve the chip for ``placement`` and return per-thread performance.

        ``smt`` only controls placement validation (hardware context bounds);
        the duty cycles inside the placement already encode time-sharing.

        When observability is off (the default) this delegates straight to
        the solver; the instrumented path adds an ``interval.model`` span
        (with cache-share and DRAM-contention sub-spans from the solver)
        plus solver counters and per-component CPI histograms.
        """
        if not TRACER.enabled and not METRICS.enabled:
            return self._solve(placement, smt)
        with TRACER.span(
            "interval.model",
            cat="interval",
            design=self.design.name,
            threads=placement.num_threads,
            smt=smt,
        ) as span:
            result = self._solve(placement, smt)
            span.set(
                iterations=result.iterations,
                mem_latency_ns=round(result.mem_latency_ns, 3),
                bus_utilization=round(result.bus_utilization, 4),
            )
        if METRICS.enabled:
            self._record_metrics(result)
        return result

    def _record_metrics(self, result: ChipResult) -> None:
        """Solver counters and CPI-component histograms for one solve.

        CPI components are observed once per solve from the *final* core
        results, not per bisection step — the distribution reflects solved
        operating points, and the volume stays bounded.
        """
        METRICS.inc("interval.solves")
        METRICS.inc("interval.solve_iterations", result.iterations)
        METRICS.observe("interval.mem_latency_inflation", result.mem_latency_inflation)
        METRICS.observe("interval.bus_utilization", result.bus_utilization)
        for core_result in result.core_results:
            for perf in core_result.threads:
                for component, value in perf.cpi_breakdown.items():
                    METRICS.observe(f"interval.cpi.{component}", value)

    def _solve(self, placement: Placement, smt: bool = True) -> ChipResult:
        placement.validate_against(self.design, smt)
        design = self.design
        llc_lat_ns = self._llc_latency_ns
        with TRACER.span("interval.cache-shares", cat="interval"):
            llc_shares = self._llc_shares(placement)
            private_shares = [
                self._private_cache_shares(core, threads)
                for core, threads in zip(design.cores, placement.core_threads)
            ]

        def run_cores(mem_lat_ns: float) -> Tuple[List[CoreResult], float]:
            """Evaluate every core at a trial memory latency; return traffic."""
            results: List[CoreResult] = []
            traffic = 0.0
            for idx, (core, threads) in enumerate(
                zip(design.cores, placement.core_threads)
            ):
                if not threads:
                    results.append(CoreResult(threads=(), utilization=0.0))
                    continue
                l1i_s, l1d_s, l2_s = private_shares[idx]
                env = CoreEnvironment(
                    l1i_share_bytes=tuple(l1i_s),
                    l1d_share_bytes=tuple(l1d_s),
                    l2_share_bytes=tuple(l2_s),
                    llc_share_bytes=tuple(llc_shares[idx]),
                    llc_latency_cycles=llc_lat_ns * core.frequency_ghz,
                    mem_latency_cycles=mem_lat_ns * core.frequency_ghz,
                )
                result = self._core_models[idx].evaluate(
                    [t.profile for t in threads],
                    env,
                    duty_cycles=[t.duty_cycle for t in threads],
                )
                results.append(result)
                cycles_per_s = core.frequency_ghz * 1e9
                for perf in result.threads:
                    traffic += (
                        perf.ipc
                        * cycles_per_s
                        * perf.mem_misses_per_instr
                        * self.uncore.llc.line_bytes
                        * WRITEBACK_TRAFFIC_FACTOR
                    )
            return results, traffic

        # The loaded latency induced by the traffic generated at latency L is
        # strictly decreasing in L (more latency -> less traffic -> less
        # queueing), so g(L) = loaded(traffic(L)) - L has a unique root:
        # bisect between the unloaded latency and the queueing-model maximum.
        with TRACER.span("interval.dram-contention", cat="interval") as dram_span:
            lo = self.unloaded_mem_latency_ns
            hi = self._loaded_mem_latency_ns(float("inf"))
            core_results, traffic = run_cores(lo)
            iterations = 1
            if self._loaded_mem_latency_ns(traffic) <= lo + CONVERGENCE_NS:
                mem_lat_ns = lo  # bus effectively unloaded: no contention
            else:
                for iterations in range(2, BISECTION_STEPS + 2):
                    mid = 0.5 * (lo + hi)
                    core_results, traffic = run_cores(mid)
                    induced = self._loaded_mem_latency_ns(traffic)
                    if (
                        abs(induced - mid) < CONVERGENCE_NS
                        or hi - lo < CONVERGENCE_NS
                    ):
                        break
                    if induced > mid:
                        lo = mid
                    else:
                        hi = mid
                mem_lat_ns = 0.5 * (lo + hi)
                core_results, traffic = run_cores(mem_lat_ns)
            dram_span.set(iterations=iterations)

        # The queueing model's latency cap cannot throttle a deeply
        # overloaded memory system (many high-MLP threads tolerate the
        # capped latency), so enforce the physical throughput ceiling:
        # sustained traffic cannot exceed what the bus and banks can move.
        # The overload manifests as extra queueing delay per miss, solved so
        # that traffic meets the ceiling — threads that rarely miss are
        # (correctly) unaffected.
        rates: List[float] = []  # instructions/second per thread
        miss_rates: List[float] = []  # misses/instruction per thread
        for core, result in zip(design.cores, core_results):
            cycles_per_s = core.frequency_ghz * 1e9
            for perf in result.threads:
                rates.append(perf.ipc * cycles_per_s)
                miss_rates.append(perf.mem_misses_per_instr)
        bytes_per_miss = self.uncore.llc.line_bytes * WRITEBACK_TRAFFIC_FACTOR

        def traffic_with_delay(extra_s_per_miss: float) -> float:
            total = 0.0
            for rate, mpi in zip(rates, miss_rates):
                throttled = rate / (1.0 + rate * mpi * extra_s_per_miss)
                total += throttled * mpi * bytes_per_miss
            return total

        ceiling = self.sustainable_traffic_bytes_per_s()
        delay_s = 0.0
        if traffic_with_delay(0.0) > ceiling:
            lo_d, hi_d = 0.0, 1e-3  # up to 1 ms of queueing per miss
            for _ in range(50):
                mid_d = 0.5 * (lo_d + hi_d)
                if traffic_with_delay(mid_d) > ceiling:
                    lo_d = mid_d
                else:
                    hi_d = mid_d
            delay_s = hi_d

        outcomes: List[ThreadOutcome] = []
        final_traffic = 0.0
        flat = 0
        for idx, (core, threads, result) in enumerate(
            zip(design.cores, placement.core_threads, core_results)
        ):
            cycles_per_s = core.frequency_ghz * 1e9
            for spec, perf in zip(threads, result.threads):
                rate = rates[flat] / (
                    1.0 + rates[flat] * miss_rates[flat] * delay_s
                )
                flat += 1
                outcomes.append(
                    ThreadOutcome(
                        core_index=idx,
                        benchmark=spec.profile.name,
                        ipc=rate / cycles_per_s,
                        ips=rate,
                        duty_cycle=spec.duty_cycle,
                    )
                )
                final_traffic += rate * perf.mem_misses_per_instr * bytes_per_miss
        bus_util = min(
            1.0, final_traffic / self.uncore.dram.bus_bandwidth_bytes_per_s
        )
        return ChipResult(
            design_name=design.name,
            threads=tuple(outcomes),
            core_results=tuple(core_results),
            core_utilizations=tuple(r.utilization for r in core_results),
            mem_latency_ns=mem_lat_ns,
            unloaded_mem_latency_ns=self.unloaded_mem_latency_ns,
            bus_utilization=bus_util,
            iterations=iterations,
        )


def isolated_ips(
    profile: BenchmarkProfile,
    core: CoreConfig = BIG,
    uncore: UncoreConfig = DEFAULT_UNCORE,
) -> float:
    """Instructions per second of ``profile`` running alone on one ``core``.

    The single thread owns all private caches and the whole LLC; bus and
    bank queueing still apply (a lone bandwidth-bound thread does load the
    bus).  This is the reference the paper normalizes STP and ANTT against
    (isolated execution on the big core).
    """
    if METRICS.enabled:
        METRICS.inc("interval.isolated_ips_evals")
    design = ChipDesign(name=f"iso-{core.name}", cores=(core,), uncore=uncore)
    placement = Placement.from_lists([[ThreadSpec(profile)]])
    result = ChipModel(design).evaluate(placement)
    return result.threads[0].ips

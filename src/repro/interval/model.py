"""Interval-analysis core performance model (the Sniper-style fast path).

The paper's simulator, Sniper [5], is an *interval simulator*: instead of
tracking every pipeline stage cycle-by-cycle, it models an out-of-order core
as issuing at a steady rate between *miss events* (branch mispredictions and
cache misses), each of which ends an interval and charges a penalty.  This
module implements that class of model for the three core types of Table 1,
including SMT resource sharing:

* **dispatch** — a thread's steady-state issue rate is
  ``min(ILP, width, window_limited_ilp(ROB_share))`` (the sub-linear
  ILP-vs-window law caps what a small reorder buffer can expose);
* **branch mispredictions** — charge a front-end refill penalty;
* **short (L2/LLC-hit) misses** — partially hidden by the reorder buffer:
  the visible fraction is ``max(0, 1 - ROB_share / (dispatch_rate x latency))``
  (an isolated miss is fully hidden if the ROB does not fill while it is
  outstanding);
* **long (DRAM) misses** — exposed, but overlapped with each other up to the
  memory-level parallelism the window can hold:
  ``MLP_eff = clamp(ROB_share x misses_per_instr x burst_factor, 1, MLP_app)``;
* **SMT** — the ROB is statically partitioned among the active hardware
  threads (Raasch & Reinhardt [24]) which shrinks per-thread MLP and
  latency-hiding, and threads then share pipeline bandwidth.  Bandwidth
  sharing is solved as a capacity constraint: each thread's unconstrained
  rate is scaled down proportionally when the sum of demands exceeds the
  core's issue width (round-robin fetch approximates proportional sharing).
* **in-order cores** — expose all miss latencies (no ROB), and implement
  fine-grained multithreading: a co-resident thread's busy cycles hide the
  other thread's stall cycles, subject to total pipeline occupancy <= 1.

The environment a core sees (cache shares, loaded memory latency) is
computed by the chip-level solver in :mod:`repro.interval.contention`.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.microarch.config import CoreConfig
from repro.obs import METRICS
from repro.util import check_fraction, check_positive
from repro.workloads.profiles import BenchmarkProfile

#: Issue-bandwidth efficiency loss per additional SMT thread sharing a
#: pipeline (fetch competition, inter-thread hazards, partition fragmentation).
#: Efficiency is ``1 - SMT_EFFICIENCY_LOSS_PER_THREAD * (n - 1)``, floored at
#: :data:`SMT_MIN_EFFICIENCY`; a single thread runs at 1.0.  Stacking six
#: threads on a big core therefore costs more issue bandwidth than running
#: three on a medium core — the effect that puts the many-core designs ahead
#: of 4B at full utilization for compute-bound workloads (Figure 4a).
SMT_EFFICIENCY_LOSS_PER_THREAD = 0.025
SMT_MIN_EFFICIENCY = 0.8


def smt_issue_efficiency(n_threads: int) -> float:
    """Shared-pipeline issue efficiency with ``n_threads`` resident threads."""
    if n_threads <= 1:
        return 1.0
    return max(
        SMT_MIN_EFFICIENCY,
        1.0 - SMT_EFFICIENCY_LOSS_PER_THREAD * (n_threads - 1),
    )

#: Execution ports cannot be used every single cycle (bank conflicts,
#: writeback contention); cap sustained port utilization at this level.
PORT_EFFICIENCY = 0.95

#: Extra pipeline cycles charged per branch misprediction on top of the
#: front-end depth (dispatch ramp-up after the flush).
BRANCH_RAMP_CYCLES = 3.0

#: Long-latency misses cluster in bursts (pointer-chasing phases, streaming
#: loops), so the local miss density inside the reorder window is higher
#: than the program-average misses-per-instruction.  The window-limited MLP
#: therefore uses ``ROB_share * misses_per_instr * burst_factor`` — which is
#: what lets a 128-entry window extract real memory parallelism even from
#: programs averaging only a few misses per kilo-instruction.
MLP_BURST_FACTOR = 5.0

#: Window-limited ILP: a reorder window of W entries can expose roughly
#: ``WINDOW_ILP_FACTOR * W ** WINDOW_ILP_EXPONENT`` independent instructions
#: per cycle (the classic sub-linear ILP-vs-window law).  A 128-entry big
#: core is effectively unconstrained (cap ~4.9), while the 32-entry medium
#: core is capped near 1.7 — it cannot keep its 2-wide pipeline saturated on
#: high-ILP code the way a large window can.
WINDOW_ILP_FACTOR = 0.115
WINDOW_ILP_EXPONENT = 0.75


def window_limited_ilp(rob_share: float) -> float:
    """Issue parallelism sustainable by a reorder window of ``rob_share`` entries."""
    if rob_share <= 0:
        return float("inf")  # in-order cores are limited elsewhere
    return WINDOW_ILP_FACTOR * rob_share**WINDOW_ILP_EXPONENT


@dataclass(frozen=True)
class CoreEnvironment:
    """Latency/capacity conditions a core sees, set by the chip solver.

    Per-thread sequences are aligned with the thread list passed to
    :meth:`IntervalCoreModel.evaluate`.

    Attributes
    ----------
    l1i_share_bytes / l1d_share_bytes / l2_share_bytes:
        Effective private-cache capacity available to each thread once SMT
        co-residents are accounted for.
    llc_share_bytes:
        Effective share of the chip-wide shared LLC for each thread.
    llc_latency_cycles:
        Load-to-use latency of an LLC hit (including interconnect hops).
    mem_latency_cycles:
        *Loaded* DRAM access latency (including queueing delay on the
        off-chip bus and DRAM banks).
    """

    l1i_share_bytes: Tuple[float, ...]
    l1d_share_bytes: Tuple[float, ...]
    l2_share_bytes: Tuple[float, ...]
    llc_share_bytes: Tuple[float, ...]
    llc_latency_cycles: float
    mem_latency_cycles: float

    @classmethod
    def unloaded(
        cls, core: CoreConfig, n_threads: int, llc_bytes: float,
        llc_latency_cycles: float, mem_latency_cycles: float,
    ) -> "CoreEnvironment":
        """An environment with caches split evenly and no bus queueing.

        Useful for isolated-thread evaluation and as a solver starting point.
        """
        check_positive("n_threads", n_threads)
        even = lambda total: tuple([total / n_threads] * n_threads)  # noqa: E731
        return cls(
            l1i_share_bytes=even(core.l1i.size_bytes),
            l1d_share_bytes=even(core.l1d.size_bytes),
            l2_share_bytes=even(core.l2.size_bytes),
            llc_share_bytes=even(llc_bytes),
            llc_latency_cycles=llc_latency_cycles,
            mem_latency_cycles=mem_latency_cycles,
        )


@dataclass(frozen=True)
class ThreadPerformance:
    """Per-thread outcome of a core-model evaluation.

    ``ipc`` is instructions per core cycle *while scheduled*, already scaled
    by the thread's duty cycle when time-sharing; ``cpi_breakdown`` maps
    component names (base, branch, l1i, l2hit, llchit, dram) to CPI adders
    for the unconstrained, full-duty execution.
    """

    ipc: float
    unconstrained_ipc: float
    mem_misses_per_instr: float
    mlp: float
    cpi_breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return 1.0 / self.ipc if self.ipc > 0 else float("inf")


@dataclass(frozen=True)
class CoreResult:
    """Outcome of evaluating one core with its resident threads."""

    threads: Tuple[ThreadPerformance, ...]
    utilization: float  # fraction of peak issue bandwidth in use

    @property
    def total_ipc(self) -> float:
        return sum(t.ipc for t in self.threads)


class IntervalCoreModel:
    """Analytical performance model of a single core (any of the three types).

    ``rob_partitioning`` selects the SMT window policy: ``"static"`` (the
    paper's baseline, Raasch & Reinhardt [24]) gives each of n threads
    ``ROB/n`` entries; ``"shared"`` models a dynamically shared window where
    a thread can opportunistically grow into co-residents' idle entries —
    approximated as twice the static share, capped at the full ROB.  Used by
    the ROB-partitioning ablation.

    ``fetch_policy`` selects how SMT threads share issue bandwidth when
    demand exceeds capacity: ``"roundrobin"`` (the paper's baseline [24])
    grants slots in strict rotation, which shares bandwidth roughly in
    proportion to each thread's demand; ``"icount"`` (Tullsen et al. [31])
    favours the threads with the fewest instructions in flight, which
    *equalizes* per-thread rates — modelled as water-filling the capacity
    across threads.
    """

    def __init__(
        self,
        core: CoreConfig,
        rob_partitioning: str = "static",
        fetch_policy: str = "roundrobin",
    ):
        if rob_partitioning not in ("static", "shared"):
            raise ValueError(
                f"rob_partitioning must be 'static' or 'shared', "
                f"got {rob_partitioning!r}"
            )
        if fetch_policy not in ("roundrobin", "icount"):
            raise ValueError(
                f"fetch_policy must be 'roundrobin' or 'icount', "
                f"got {fetch_policy!r}"
            )
        self.core = core
        self.rob_partitioning = rob_partitioning
        self.fetch_policy = fetch_policy
        # Hot-path constants and tiny memos (a chip solve calls
        # `_thread_static_terms` once per thread per evaluation; these keys
        # take only a handful of distinct values per model).  Memoized
        # values are the exact floats the inline expressions produce, so
        # they change no results.
        self._width_f = float(core.width)
        self._l2_lat = float(core.l2.latency_cycles)
        self._branch_penalty = core.frontend_depth + BRANCH_RAMP_CYCLES
        self._rob_share_memo: Dict[int, float] = {}
        self._issue_memo: Dict[Tuple[float, float], float] = {}
        self._vis_memo: Dict[Tuple[float, float], float] = {}
        self._terms_memo: Dict[Tuple, Tuple] = {}

    def _rob_share(self, n_threads: int) -> int:
        static = self.core.rob_share(n_threads)
        if self.rob_partitioning == "static" or n_threads == 1:
            return static
        return min(self.core.rob_size, 2 * static)

    # ------------------------------------------------------------------ #
    # per-thread unconstrained CPI                                        #
    # ------------------------------------------------------------------ #

    def _miss_rates(
        self, profile: BenchmarkProfile, env: CoreEnvironment, idx: int
    ) -> Tuple[float, float, float, float]:
        """Per-instruction miss rates (l1i, l1d->L2, L2->LLC, LLC->mem).

        The single stack-distance-style curve is evaluated at successive
        capacities; level-to-level rates are hierarchical differences,
        clamped to be non-negative.
        """
        l1i = profile.icurve.misses_per_instruction(env.l1i_share_bytes[idx])
        l1d = profile.dcurve.misses_per_instruction(env.l1d_share_bytes[idx])
        l2 = profile.dcurve.misses_per_instruction(env.l2_share_bytes[idx])
        mem = profile.dcurve.misses_per_instruction(
            env.l2_share_bytes[idx] + env.llc_share_bytes[idx]
        )
        # Monotonicity along the hierarchy.
        l2 = min(l2, l1d)
        mem = min(mem, l2)
        return l1i, l1d, l2, mem

    def _visible_fraction(self, latency: float, rob_share: float) -> float:
        """Fraction of a short-miss latency the OoO window cannot hide."""
        if latency <= 0:
            return 0.0
        dispatch_rate = float(self.core.width)
        return min(1.0, max(0.0, 1.0 - rob_share / (dispatch_rate * latency)))

    def _thread_static_terms(
        self,
        profile: BenchmarkProfile,
        env: CoreEnvironment,
        idx: int,
        n_threads: int,
    ) -> Tuple[float, float, float, float, float, float, float]:
        """The latency-independent pieces of :meth:`_thread_cpi`, memoized.

        A chip solve computes these twice per thread (once for the batch
        statics, once when materializing the converged result), and a study
        slab revisits the same (profile, shares) points; the memo returns
        the exact tuple the computation produced.  Keys pin the profile
        object so an ``id`` can never be reused while its entry is alive.
        """
        key = (
            id(profile),
            env.l1i_share_bytes[idx],
            env.l1d_share_bytes[idx],
            env.l2_share_bytes[idx],
            env.llc_share_bytes[idx],
            env.llc_latency_cycles,
            n_threads,
        )
        hit = self._terms_memo.get(key)
        if hit is not None and hit[0] is profile:
            return hit[1]
        terms = self._compute_thread_static_terms(profile, env, idx, n_threads)
        self._terms_memo[key] = (profile, terms)
        return terms

    def _compute_thread_static_terms(
        self,
        profile: BenchmarkProfile,
        env: CoreEnvironment,
        idx: int,
        n_threads: int,
    ) -> Tuple[float, float, float, float, float, float, float]:
        """The latency-independent pieces of :meth:`_thread_cpi`.

        Returns ``(cpi_base, cpi_branch, cpi_l1i, cpi_l2hit, cpi_llchit,
        mem_mpi, mlp)``.  Everything here depends only on the cache shares
        and core partitioning — not on the trial memory latency — which is
        what lets the chip solver compute them once per solve and re-derive
        only the DRAM term per bisection step.  This is the single source
        of truth for both the scalar path (:meth:`_thread_cpi`) and the
        batch path (:meth:`batch_statics`).
        """
        core = self.core
        l1i_mpi, l1d_mpi, l2_mpi, mem_mpi = self._miss_rates(profile, env, idx)
        l2_lat = self._l2_lat
        llc_lat = env.llc_latency_cycles

        cpi_branch = profile.branch_mpki / 1000.0 * self._branch_penalty

        if core.is_out_of_order:
            try:
                rob_share = self._rob_share_memo[n_threads]
            except KeyError:
                rob_share = float(self._rob_share(n_threads))
                self._rob_share_memo[n_threads] = rob_share
            issue_key = (profile.ilp, rob_share)
            try:
                cpi_base = self._issue_memo[issue_key]
            except KeyError:
                issue_rate = min(
                    profile.ilp, self._width_f, window_limited_ilp(rob_share)
                )
                cpi_base = 1.0 / issue_rate
                self._issue_memo[issue_key] = cpi_base
            # Short misses: partially hidden by the window.
            vis_l2 = self._vis_memo.get((l2_lat, rob_share))
            if vis_l2 is None:
                vis_l2 = self._visible_fraction(l2_lat, rob_share)
                self._vis_memo[(l2_lat, rob_share)] = vis_l2
            vis_llc = self._vis_memo.get((llc_lat, rob_share))
            if vis_llc is None:
                vis_llc = self._visible_fraction(llc_lat, rob_share)
                self._vis_memo[(llc_lat, rob_share)] = vis_llc
            cpi_l1i = l1i_mpi * l2_lat * 0.8  # front-end misses hide poorly
            cpi_l2hit = max(0.0, l1d_mpi - l2_mpi) * l2_lat * vis_l2
            cpi_llchit = max(0.0, l2_mpi - mem_mpi) * llc_lat * vis_llc
            # Long misses: overlapped up to the window-limited MLP.
            mlp = max(1.0, min(profile.mlp, rob_share * mem_mpi * MLP_BURST_FACTOR))
        else:
            issue_rate = min(profile.ilp_inorder, self._width_f)
            cpi_base = 1.0 / issue_rate
            # Stall-on-use: every miss latency is fully exposed, serially.
            mlp = 1.0
            cpi_l1i = l1i_mpi * l2_lat
            cpi_l2hit = max(0.0, l1d_mpi - l2_mpi) * l2_lat
            cpi_llchit = max(0.0, l2_mpi - mem_mpi) * llc_lat
        return cpi_base, cpi_branch, cpi_l1i, cpi_l2hit, cpi_llchit, mem_mpi, mlp

    def _thread_cpi(
        self,
        profile: BenchmarkProfile,
        env: CoreEnvironment,
        idx: int,
        n_threads: int,
    ) -> ThreadPerformance:
        """Unconstrained CPI of one thread, with partitioned core resources."""
        cpi_base, cpi_branch, cpi_l1i, cpi_l2hit, cpi_llchit, mem_mpi, mlp = (
            self._thread_static_terms(profile, env, idx, n_threads)
        )
        mem_lat = env.mem_latency_cycles
        if self.core.is_out_of_order:
            cpi_dram = mem_mpi * mem_lat / mlp
        else:
            cpi_dram = mem_mpi * mem_lat

        breakdown = {
            "base": cpi_base,
            "branch": cpi_branch,
            "l1i": cpi_l1i,
            "l2hit": cpi_l2hit,
            "llchit": cpi_llchit,
            "dram": cpi_dram,
        }
        cpi = sum(breakdown.values())
        return ThreadPerformance(
            ipc=1.0 / cpi,
            unconstrained_ipc=1.0 / cpi,
            mem_misses_per_instr=mem_mpi,
            mlp=mlp,
            cpi_breakdown=breakdown,
        )

    # ------------------------------------------------------------------ #
    # core-level evaluation with bandwidth sharing                        #
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        profiles: Sequence[BenchmarkProfile],
        env: CoreEnvironment,
        duty_cycles: Optional[Sequence[float]] = None,
    ) -> CoreResult:
        """Evaluate ``profiles`` co-running on this core.

        Parameters
        ----------
        profiles:
            Profiles of the threads resident on this core (one per hardware
            context in use; at most ``core.max_smt_contexts``).
        env:
            Cache shares and loaded latencies, aligned with ``profiles``.
        duty_cycles:
            Fraction of time each thread is scheduled on its context; 1.0
            unless the scheduler is time-sharing (no-SMT mode with more
            threads than cores).

        Returns
        -------
        CoreResult
            Per-thread IPC (duty-scaled) and core utilization.
        """
        n = len(profiles)
        if n == 0:
            return CoreResult(threads=(), utilization=0.0)
        if duty_cycles is None:
            duty_cycles = [1.0] * n
        if len(duty_cycles) != n:
            raise ValueError("duty_cycles must align with profiles")
        for d in duty_cycles:
            check_fraction("duty_cycle", d)
        if sum(duty_cycles) > self.core.max_smt_contexts + 1e-9:
            raise ValueError(
                f"{self.core.name} core supports at most "
                f"{self.core.max_smt_contexts} concurrent contexts; summed "
                f"duty cycles give {sum(duty_cycles):.2f}"
            )
        # The ROB is statically partitioned across the *concurrently resident*
        # hardware contexts, not across every thread time-sharing the core:
        # six threads round-robining a non-SMT core each see the full window
        # while scheduled.  The expected concurrency is the summed duty.
        n_ctx = min(self.core.max_smt_contexts, max(1, round(sum(duty_cycles))))

        # Hot path (~40 calls per chip solve): a single guard keeps the
        # disabled cost to one attribute check.
        if METRICS.enabled:
            METRICS.inc("interval.core_evals")
            if n_ctx > 1:
                METRICS.inc("interval.core_evals_smt")

        solo = [self._thread_cpi(p, env, i, n_ctx) for i, p in enumerate(profiles)]
        rates = [t.unconstrained_ipc * d for t, d in zip(solo, duty_cycles)]

        if self.fetch_policy == "icount" and n_ctx > 1:
            final_rates = self._icount_rates(profiles, solo, rates, n_ctx)
        else:
            scale = self._bandwidth_scale(profiles, solo, rates, n_ctx)
            final_rates = [r * scale for r in rates]
        scaled = [
            ThreadPerformance(
                ipc=r,
                unconstrained_ipc=t.unconstrained_ipc,
                mem_misses_per_instr=t.mem_misses_per_instr,
                mlp=t.mlp,
                cpi_breakdown=t.cpi_breakdown,
            )
            for t, r in zip(solo, final_rates)
        ]
        utilization = min(
            1.0, sum(t.ipc for t in scaled) / float(self.core.width)
        )
        return CoreResult(threads=tuple(scaled), utilization=utilization)

    def _bandwidth_scale(
        self,
        profiles: Sequence[BenchmarkProfile],
        solo: Sequence[ThreadPerformance],
        rates: Sequence[float],
        n_ctx: int,
    ) -> float:
        """Proportional scale factor from shared-pipeline capacity limits."""
        core = self.core
        issue_eff = smt_issue_efficiency(n_ctx)

        if core.is_out_of_order:
            # Issue slots are truly shared: one instruction consumes
            # 1/width cycles of dispatch bandwidth regardless of its thread.
            pipe_demand = sum(rates) / (core.width * issue_eff)
        else:
            # Fine-grained MT: a thread's busy cycles (dependence-limited
            # issue plus branch flushes) occupy the pipeline exclusively;
            # only its stall cycles can be filled by the co-resident thread.
            pipe_demand = 0.0
            for p, t, r in zip(profiles, solo, rates):
                busy_cpi = t.cpi_breakdown["base"] + t.cpi_breakdown["branch"]
                pipe_demand += r * busy_cpi
            pipe_demand /= issue_eff

        fu = core.functional_units
        ldst_demand = sum(
            r * p.mem_frac for p, r in zip(profiles, rates)
        ) / (fu.load_store * PORT_EFFICIENCY)
        alu_ports = fu.int_alu + fu.mul_div + fu.fp
        alu_demand = sum(
            r * (1.0 - p.mem_frac) for p, r in zip(profiles, rates)
        ) / (alu_ports * PORT_EFFICIENCY)

        worst = max(pipe_demand, ldst_demand, alu_demand)
        return 1.0 if worst <= 1.0 else 1.0 / worst

    # ------------------------------------------------------------------ #
    # vectorized batch path                                               #
    # ------------------------------------------------------------------ #

    def batch_statics(
        self,
        profiles: Sequence[BenchmarkProfile],
        env: CoreEnvironment,
        duty_cycles: Sequence[float],
    ) -> Optional["CoreBatchStatics"]:
        """Latency-independent per-thread vectors for the batch solver.

        This is the batch counterpart of the per-thread loop in
        :meth:`evaluate`: everything `_miss_rates` / `_visible_fraction` /
        `_thread_cpi` produce that does *not* depend on the trial memory
        latency, computed through the same :meth:`_thread_static_terms`
        helper the scalar path uses (single source of truth for the golden
        arithmetic) but without building any per-thread result objects.
        The chip solver's kernel then re-derives only the DRAM term per
        bisection step with a handful of elementwise operations.

        The partial sum below reproduces ``sum(breakdown.values())``'s
        sequential association bit-for-bit, which is what makes the batch
        path's CPI IEEE-identical to the scalar one at any latency.  Input
        validation mirrors :meth:`evaluate` so invalid placements raise
        identically on both paths.

        Returns ``None`` when this core would need ICOUNT water-filling
        (fetch policy ``"icount"`` with more than one resident context) —
        that path stays scalar.
        """
        n = len(profiles)
        if len(duty_cycles) != n:
            raise ValueError("duty_cycles must align with profiles")
        for d in duty_cycles:
            check_fraction("duty_cycle", d)
        if sum(duty_cycles) > self.core.max_smt_contexts + 1e-9:
            raise ValueError(
                f"{self.core.name} core supports at most "
                f"{self.core.max_smt_contexts} concurrent contexts; summed "
                f"duty cycles give {sum(duty_cycles):.2f}"
            )
        n_ctx = min(self.core.max_smt_contexts, max(1, round(sum(duty_cycles))))
        if self.fetch_policy == "icount" and n_ctx > 1:
            return None
        core = self.core
        issue_eff = smt_issue_efficiency(n_ctx)
        if core.is_out_of_order:
            pipe_denominator = core.width * issue_eff
        else:
            pipe_denominator = issue_eff
        fu = core.functional_units
        alu_ports = fu.int_alu + fu.mul_div + fu.fp
        static_cpi = []
        busy_cpi = []
        dram_mpi = []
        mlp_l = []
        mem_frac = []
        nonmem_frac = []
        for i, p in enumerate(profiles):
            base, branch, l1i, l2hit, llchit, mem_mpi, mlp = (
                self._thread_static_terms(p, env, i, n_ctx)
            )
            static_cpi.append((((base + branch) + l1i) + l2hit) + llchit)
            busy_cpi.append(base + branch)
            dram_mpi.append(mem_mpi)
            mlp_l.append(mlp)
            mem_frac.append(p.mem_frac)
            nonmem_frac.append(1.0 - p.mem_frac)
        return CoreBatchStatics(
            is_out_of_order=core.is_out_of_order,
            frequency_ghz=core.frequency_ghz,
            pipe_denominator=pipe_denominator,
            ldst_denominator=fu.load_store * PORT_EFFICIENCY,
            alu_denominator=alu_ports * PORT_EFFICIENCY,
            static_cpi=static_cpi,
            dram_mpi=dram_mpi,
            mlp=mlp_l,
            duty_cycle=list(duty_cycles),
            mem_frac=mem_frac,
            nonmem_frac=nonmem_frac,
            busy_cpi=busy_cpi,
        )

    def _icount_rates(
        self,
        profiles: Sequence[BenchmarkProfile],
        solo: Sequence[ThreadPerformance],
        rates: Sequence[float],
        n_ctx: int,
    ) -> List[float]:
        """ICOUNT bandwidth sharing: water-fill capacity across threads.

        ICOUNT fetches for the least-occupying threads first, which drives
        per-thread throughput towards equality: every thread gets
        ``min(unconstrained_rate, level)`` with the level chosen so the
        binding capacity constraint is just met.
        """

        def feasible(level: float) -> bool:
            capped = [min(r, level) for r in rates]
            return self._bandwidth_scale(profiles, solo, capped, n_ctx) >= 1.0

        if self._bandwidth_scale(profiles, solo, rates, n_ctx) >= 1.0:
            return list(rates)
        lo, hi = 0.0, max(rates)
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if feasible(mid):
                lo = mid
            else:
                hi = mid
        return [min(r, lo) for r in rates]


@dataclass(frozen=True)
class CoreBatchStatics:
    """Latency-independent vectors for one core's resident threads.

    Produced by :meth:`IntervalCoreModel.batch_statics`; consumed by the
    chip solver's batch kernel (:mod:`repro.interval.contention`), which
    recomputes only the latency-dependent DRAM term per bisection step:

    ``cpi(L) = static_cpi + dram_mpi * L_cycles / mlp`` and
    ``rate = (1 / cpi) * duty_cycle``, followed by the per-core bandwidth
    scale built from ``pipe/ldst/alu`` demands over these vectors.

    Per-thread fields are plain Python lists (exact float64 values); the
    kernel concatenates the lists of every core in a batch and builds one
    NumPy array per field, so array-construction cost is paid once per
    batch rather than once per core.  All reductions over the arrays must
    run sequentially in thread order (NumPy's pairwise summation is not
    bit-identical to Python's ``sum``).
    """

    is_out_of_order: bool
    frequency_ghz: float
    pipe_denominator: float  # width*issue_eff (OoO) or issue_eff (in-order)
    ldst_denominator: float
    alu_denominator: float
    static_cpi: List[float]  # base+branch+l1i+l2hit+llchit, scalar sum order
    dram_mpi: List[float]  # memory misses per instruction (clamped)
    mlp: List[float]  # effective memory-level parallelism (1.0 in-order)
    duty_cycle: List[float]
    mem_frac: List[float]
    nonmem_frac: List[float]
    busy_cpi: List[float]  # base+branch: in-order pipeline occupancy

    @property
    def n_threads(self) -> int:
        return len(self.static_cpi)

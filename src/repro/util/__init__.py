"""Small shared utilities: validation, units, deterministic RNG helpers."""

from repro.util.units import KB, MB, GHZ, ns_to_cycles, cycles_to_ns
from repro.util.validate import check_positive, check_fraction, check_in

__all__ = [
    "KB",
    "MB",
    "GHZ",
    "ns_to_cycles",
    "cycles_to_ns",
    "check_positive",
    "check_fraction",
    "check_in",
]

"""Small shared utilities: validation, units, atomic IO, RNG helpers."""

from repro.util.io import atomic_write_json, atomic_write_text
from repro.util.units import KB, MB, GHZ, ns_to_cycles, cycles_to_ns
from repro.util.validate import check_positive, check_fraction, check_in

__all__ = [
    "KB",
    "MB",
    "GHZ",
    "ns_to_cycles",
    "cycles_to_ns",
    "atomic_write_json",
    "atomic_write_text",
    "check_positive",
    "check_fraction",
    "check_in",
]

"""Atomic file writes shared by the store, summaries, and obs exports.

Same discipline as the result store: write to a temp file in the target's
directory, then ``os.replace`` — a killed process can leave a stray
``.*.tmp`` but never a truncated target file.
"""

import json
import os
import tempfile
from pathlib import Path
from typing import Any


def atomic_write_text(path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}-", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path, obj: Any, indent: int = 2) -> None:
    """Serialise ``obj`` as JSON and write it atomically to ``path``."""
    atomic_write_text(path, json.dumps(obj, indent=indent, sort_keys=True) + "\n")

"""Unit helpers used throughout the library.

Conventions:

* Cache and memory sizes are in **bytes** (use :data:`KB` / :data:`MB`).
* Clock frequencies are in **GHz**.
* Latencies inside a core are in **cycles at the core frequency**; latencies of
  off-core components (DRAM) are specified in nanoseconds and converted at use
  sites with :func:`ns_to_cycles`.
* Bandwidth is in **bytes per second**.
"""

KB = 1024
MB = 1024 * KB
GHZ = 1e9


def ns_to_cycles(latency_ns: float, frequency_ghz: float) -> float:
    """Convert a latency in nanoseconds to cycles at ``frequency_ghz``.

    >>> ns_to_cycles(45.0, 2.66)
    119.7
    """
    if latency_ns < 0:
        raise ValueError(f"latency_ns must be >= 0, got {latency_ns}")
    if frequency_ghz <= 0:
        raise ValueError(f"frequency_ghz must be > 0, got {frequency_ghz}")
    return latency_ns * frequency_ghz


def cycles_to_ns(cycles: float, frequency_ghz: float) -> float:
    """Convert a cycle count at ``frequency_ghz`` back to nanoseconds."""
    if cycles < 0:
        raise ValueError(f"cycles must be >= 0, got {cycles}")
    if frequency_ghz <= 0:
        raise ValueError(f"frequency_ghz must be > 0, got {frequency_ghz}")
    return cycles / frequency_ghz

"""Argument-validation helpers.

These raise ``ValueError`` with a message naming the offending parameter, so
configuration mistakes fail loudly at construction time rather than surfacing
as nonsensical simulation output.
"""

from typing import Any, Collection


def check_positive(name: str, value: float, allow_zero: bool = False) -> float:
    """Validate that ``value`` is positive (or non-negative if ``allow_zero``)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Collection[Any]) -> Any:
    """Validate that ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")
    return value

"""repro.obs — zero-dependency observability: tracing, metrics, logging.

Three singletons cover the whole stack:

* :data:`TRACER` — span tracer exporting Chrome trace-event JSON
  (Perfetto / ``chrome://tracing``), with cross-process span marshalling
  through the engine;
* :data:`METRICS` — counters/gauges/histograms with deterministic
  snapshots;
* :func:`get_logger` — structured stderr logging (text or JSON lines).

Everything is disabled by default and costs one attribute check per call
site when off.  See ``docs/observability.md`` for the full catalog.
"""

from repro.obs.live import (
    RingTracer,
    RollingHistogram,
    TelemetryHTTPServer,
    TimeSeriesRecorder,
    prometheus_text,
    tee_instant,
    tee_span,
    write_flight_record,
)
from repro.obs.logging import (
    JsonFormatter,
    StructuredLogger,
    TextFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import METRICS, Histogram, MetricsRegistry
from repro.obs.progress import MultiLineDisplay, ProgressLine
from repro.obs.trace import (
    TRACER,
    Span,
    Tracer,
    traced,
    validate_trace,
    validate_trace_file,
)

__all__ = [
    "METRICS",
    "TRACER",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "MultiLineDisplay",
    "ProgressLine",
    "RingTracer",
    "RollingHistogram",
    "Span",
    "StructuredLogger",
    "TelemetryHTTPServer",
    "TextFormatter",
    "TimeSeriesRecorder",
    "Tracer",
    "configure_logging",
    "enable_observation",
    "get_logger",
    "observation_flags",
    "prometheus_text",
    "reset_observability",
    "tee_instant",
    "tee_span",
    "traced",
    "validate_trace",
    "validate_trace_file",
    "write_flight_record",
]


def observation_flags() -> tuple:
    """Which collectors are live, as a picklable tuple for worker handoff."""
    flags = []
    if TRACER.enabled:
        flags.append("trace")
    if METRICS.enabled:
        flags.append("metrics")
    return tuple(flags)


def enable_observation(flags) -> None:
    """Enable the collectors named in ``flags`` (inverse of the above)."""
    if "trace" in flags:
        TRACER.enable()
    if "metrics" in flags:
        METRICS.enable()


def reset_observability() -> None:
    """Disable and clear both collectors (tests and CLI teardown)."""
    TRACER.disable()
    TRACER.reset()
    METRICS.disable()
    METRICS.reset()

"""Counters, gauges, and histograms with a free disabled path.

A single process-wide :data:`METRICS` registry backs every instrumented
layer (engine, store, interval model, caches, DRAM).  The registry is
disabled by default; ``inc``/``set_gauge``/``observe`` return immediately
when off, and hot loops guard the call entirely with
``if METRICS.enabled:`` so the cost is one attribute check.

Histograms keep exact ``count``/``sum``/``min``/``max`` but bound memory
with a deterministic reservoir (first :data:`Histogram.cap` samples) so a
million-observation sweep cannot blow up worker→parent marshalling.
Percentiles are nearest-rank over the retained samples.

Worker processes run their own registry; :meth:`MetricsRegistry.drain_raw`
serialises the deltas into plain dicts that travel inside the unit outcome
and are folded back with :meth:`MetricsRegistry.merge_raw`.
"""

import math
from typing import Any, Dict, List, Optional


class Histogram:
    """Value distribution with exact aggregates and a bounded reservoir."""

    #: Samples retained for percentile estimation.  Deterministic (the
    #: first ``cap`` observations) so repeated runs snapshot identically.
    cap = 4096

    __slots__ = ("count", "total", "min", "max", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < self.cap:
            self.samples.append(value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> Dict[str, Any]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "sampled": len(self.samples),
        }

    # -- cross-process marshalling ------------------------------------- #

    def to_raw(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self.samples),
        }

    def merge_raw(self, raw: Dict[str, Any]) -> None:
        self.count += raw["count"]
        self.total += raw["total"]
        if raw["min"] is not None:
            self.min = raw["min"] if self.min is None else min(self.min, raw["min"])
        if raw["max"] is not None:
            self.max = raw["max"] if self.max is None else max(self.max, raw["max"])
        room = self.cap - len(self.samples)
        if room > 0:
            self.samples.extend(raw["samples"][:room])


class MetricsRegistry:
    """Named counters, gauges, and histograms; disabled by default."""

    def __init__(self) -> None:
        self.enabled = False
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- lifecycle ------------------------------------------------------ #

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded value (does not change ``enabled``)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    # -- recording ------------------------------------------------------ #

    def inc(self, name: str, amount: float = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created on demand (for direct observe loops)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    # -- export ---------------------------------------------------------- #

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready, deterministically ordered view of every metric."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].snapshot() for k in sorted(self.histograms)
            },
        }

    def write(self, path) -> None:
        """Atomically write :meth:`snapshot` as JSON to ``path``."""
        from repro.util.io import atomic_write_json

        atomic_write_json(path, self.snapshot())

    # -- cross-process marshalling --------------------------------------- #

    def drain_raw(self) -> Optional[Dict[str, Any]]:
        """Remove and return the registry contents in mergeable form.

        Returns ``None`` when nothing was recorded, so idle workers ship
        no payload.
        """
        if not (self.counters or self.gauges or self.histograms):
            return None
        raw = {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.to_raw() for k, h in self.histograms.items()},
        }
        self.reset()
        return raw

    def merge_raw(self, raw: Optional[Dict[str, Any]]) -> None:
        """Fold a :meth:`drain_raw` payload from another process in."""
        if not raw or not self.enabled:
            return
        for name, amount in raw.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + amount
        # Last write wins for gauges; worker gauges are point-in-time.
        self.gauges.update(raw.get("gauges", {}))
        for name, payload in raw.get("histograms", {}).items():
            self.histogram(name).merge_raw(payload)


#: The process-wide registry.  Worker processes enable their own copy when
#: the engine asks them to observe.
METRICS = MetricsRegistry()

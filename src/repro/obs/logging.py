"""Structured logging for the CLI and engine.

All repro status output goes through the ``repro`` logger hierarchy with
two formats:

* **text** (default) — the bare message, followed by ``[k=v ...]`` when
  structured fields are attached.  At the default ``info`` level this
  renders exactly the status lines the CLI printed before this layer
  existed, so scripted consumers of stderr keep working.
* **json** (``--log-json``) — one JSON object per line with ``ts``,
  ``level``, ``logger``, ``event``, and any structured fields flattened
  in, keys sorted for deterministic output.

Handlers resolve ``sys.stderr`` at *emit* time, not at configuration
time, so pytest's ``capsys`` (which swaps ``sys.stderr``) captures log
output like it captures prints.
"""

import json
import logging
import sys
from typing import Any

_ROOT_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class _DynamicStderrHandler(logging.Handler):
    """Writes to whatever ``sys.stderr`` is when the record is emitted."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            message = self.format(record)
            stream = sys.stderr
            stream.write(message + "\n")
        except Exception:  # pragma: no cover - mirrors logging's own policy
            self.handleError(record)


class TextFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        fields = getattr(record, "fields", None)
        if fields:
            rendered = " ".join(f"{k}={fields[k]}" for k in fields)
            message = f"{message} [{rendered}]"
        return message


class JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, _jsonable(value))
        return json.dumps(payload, sort_keys=True)


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def configure_logging(level: str = "info", json_mode: bool = False) -> None:
    """(Re)configure the ``repro`` logger for one CLI invocation."""
    logger = logging.getLogger(_ROOT_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = _DynamicStderrHandler()
    handler.setFormatter(JsonFormatter() if json_mode else TextFormatter())
    logger.addHandler(handler)
    logger.setLevel(_LEVELS.get(level, logging.INFO))
    logger.propagate = False


class StructuredLogger:
    """Thin wrapper turning keyword fields into structured record extras."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    def debug(self, event: str, **fields: Any) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log(logging.ERROR, event, fields)

    def _log(self, level: int, event: str, fields: Any) -> None:
        if self._logger.isEnabledFor(level):
            self._logger._log(level, event, (), extra={"fields": fields})


def get_logger(name: str = "") -> StructuredLogger:
    """A structured logger under the ``repro`` hierarchy."""
    full = f"{_ROOT_NAME}.{name}" if name else _ROOT_NAME
    return StructuredLogger(logging.getLogger(full))


# Ensure importing the obs layer never triggers logging's
# "no handlers could be found" fallback before configure_logging runs.
logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())

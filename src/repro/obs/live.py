"""Daemon-grade live telemetry on top of :mod:`repro.obs`.

The PR 3 collectors are write-once-at-exit: :data:`~repro.obs.TRACER`
buffers every span until a ``--trace`` file is written and
:data:`~repro.obs.METRICS` only ever snapshots on demand.  A resident
daemon (:mod:`repro.serve`) needs the opposite shape — bounded memory
over an unbounded lifetime, and a way to pull history *out of a live
process*.  This module adds exactly that, still zero-dependency:

* :class:`RingTracer` — a :class:`~repro.obs.trace.Tracer` whose event
  buffer is a ring: it always holds the last ``cap`` events and drops
  the oldest on overflow (``dropped`` counts them).  Always-on tracing
  of the serve tier costs one bounded list.
* :class:`TimeSeriesRecorder` — samples a
  :class:`~repro.obs.metrics.MetricsRegistry` at a fixed interval into a
  ring of snapshots (absolute counter values *and* per-interval deltas,
  gauges, histogram summaries), optionally on its own daemon thread.
* :class:`RollingHistogram` — percentiles over the most recent ``window``
  observations (the registry's :class:`~repro.obs.metrics.Histogram`
  reservoir keeps the *first* 4096 samples — right for batch runs, wrong
  for SLOs on a long-lived server).
* :func:`prometheus_text` — renders a registry snapshot in the Prometheus
  text exposition format (counters as ``*_total``, histograms as
  summaries with quantiles, ``name{label=value}`` series grouped).
* :class:`TelemetryHTTPServer` — a stdlib ``http.server`` thread
  publishing ``/metrics`` and ``/healthz`` (503 while draining).
* :func:`write_flight_record` — dumps the last window of spans and
  time-series (plus a metrics snapshot) to one JSON file; the serve
  daemon calls it on SIGUSR1 and on drain.

Sampling threads read live dicts that the owning thread mutates; every
read path here is best-effort (a ``RuntimeError`` from a dict resizing
mid-iteration skips that tick rather than crashing the sampler).
"""

import json
import re
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import _NOOP_SPAN, Tracer


class _BoundedEvents(list):
    """A list that keeps only its last ``cap`` appended items.

    :class:`~repro.obs.trace.Span` appends finished events and
    :meth:`~repro.obs.trace.Tracer.drain` slice-deletes, so the ring must
    stay a real ``list`` — a ``deque`` would break both call sites.
    """

    def __init__(self, cap: int):
        super().__init__()
        if cap < 1:
            raise ValueError(f"ring capacity must be >= 1, got {cap}")
        self.cap = cap
        #: Events discarded because the ring was full.
        self.dropped = 0

    def append(self, item: Any) -> None:
        super().append(item)
        excess = len(self) - self.cap
        if excess > 0:
            del self[:excess]
            self.dropped += excess

    def extend(self, items) -> None:
        for item in items:
            self.append(item)


class RingTracer(Tracer):
    """A tracer that holds the last ``cap`` events of a live process.

    Unlike the global tracer it is meant to stay enabled for the life of
    a daemon: memory is bounded by construction, and :meth:`export`
    returns a valid Chrome trace of the recent window at any time.
    """

    def __init__(self, cap: int = 2048):
        super().__init__()
        self.cap = cap
        self.events = _BoundedEvents(cap)
        self.enable()

    @property
    def dropped(self) -> int:
        return self.events.dropped

    def reset(self) -> None:
        dropped = self.events.dropped
        self.events = _BoundedEvents(self.cap)
        self.events.dropped = dropped

    def export(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The recent window as trace-event JSON (last ``limit`` events)."""
        if limit is not None and limit >= 0:
            keep = list(self.events)[-limit:] if limit else []
        else:
            keep = list(self.events)
        saved = self.events
        try:
            self.events = keep
            exported = super().export()
        finally:
            self.events = saved
        exported["dropped"] = self.events.dropped
        return exported


def tee_span(tracers: Sequence[Tracer], name: str, cat: str = "repro", **args):
    """One context manager spanning every *enabled* tracer in ``tracers``.

    The serve tier records into its always-on ring tracer while still
    feeding the global tracer when ``--trace`` enabled it; each tracer
    gets its own span (and its own args dict) so buffers stay independent.
    """
    spans = [t.span(name, cat, **args) for t in tracers if t.enabled]
    if not spans:
        return _NOOP_SPAN
    if len(spans) == 1:
        return spans[0]
    return _TeeSpan(spans)


class _TeeSpan:
    __slots__ = ("_spans",)

    def __init__(self, spans):
        self._spans = spans

    def __enter__(self) -> "_TeeSpan":
        for span in self._spans:
            span.__enter__()
        return self

    def set(self, **args: Any) -> "_TeeSpan":
        for span in self._spans:
            span.set(**args)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        for span in reversed(self._spans):
            span.__exit__(exc_type, exc, tb)
        return False


def tee_instant(
    tracers: Sequence[Tracer], name: str, cat: str = "repro", **args: Any
) -> None:
    """Record one instant marker on every enabled tracer."""
    for tracer in tracers:
        tracer.instant(name, cat, **args)


class RollingHistogram:
    """Percentiles over the most recent ``window`` observations.

    Lifetime ``count``/``total`` are exact; distribution statistics
    (mean, max, p50/p95/p99) cover only the retained window, which is
    what an SLO over "the recent past" wants from a long-lived server.
    """

    __slots__ = ("window", "count", "total", "_samples")

    def __init__(self, window: int = 1024):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.count = 0
        self.total = 0.0
        self._samples: deque = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self._samples.append(value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained window."""
        ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = max(1, -(-int(q * len(ordered)) // 100))
        rank = min(rank, len(ordered))
        return ordered[rank - 1]

    def snapshot(self) -> Dict[str, Any]:
        ordered = sorted(self._samples)
        if not ordered:
            return {"count": self.count, "window": 0}

        def at(q: float) -> float:
            rank = max(1, min(len(ordered), -(-int(q * len(ordered)) // 100)))
            return ordered[rank - 1]

        return {
            "count": self.count,
            "window": len(ordered),
            "mean": sum(ordered) / len(ordered),
            "max": ordered[-1],
            "p50": at(50),
            "p95": at(95),
            "p99": at(99),
        }


class TimeSeriesRecorder:
    """Periodic registry snapshots in a bounded ring.

    Each sample records the wall time, the elapsed interval, absolute
    counter values *and* the per-interval deltas, current gauges, and a
    summary of every histogram.  ``capacity`` bounds memory for the life
    of the daemon; :meth:`series` returns the recent window oldest-first.

    ``pre_sample`` (if given) runs right before each snapshot — the serve
    daemon uses it to refresh scheduler gauges.  Sampling may race the
    owning thread's writes; a tick that trips over a resizing dict is
    dropped (``sample_errors``) instead of crashing the thread.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float = 1.0,
        capacity: int = 512,
        pre_sample: Optional[Callable[[], None]] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.registry = registry
        self.interval = interval
        self.capacity = capacity
        self.pre_sample = pre_sample
        self.sample_errors = 0
        self._samples: deque = deque(maxlen=capacity)
        self._prev_counters: Dict[str, float] = {}
        self._prev_ts: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample(self) -> Optional[Dict[str, Any]]:
        """Take one snapshot now; returns it (or None on a racing tick)."""
        try:
            if self.pre_sample is not None:
                self.pre_sample()
            now = time.time()
            counters = dict(self.registry.counters)
            gauges = dict(self.registry.gauges)
            histograms = {
                name: hist.snapshot()
                for name, hist in list(self.registry.histograms.items())
            }
        except RuntimeError:  # a dict resized under us; skip this tick
            self.sample_errors += 1
            return None
        deltas = {
            name: counters[name] - self._prev_counters.get(name, 0)
            for name in sorted(counters)
        }
        sample = {
            "ts": round(now, 6),
            "dt": (
                round(now - self._prev_ts, 6) if self._prev_ts is not None else None
            ),
            "counters": {name: counters[name] for name in sorted(counters)},
            "deltas": deltas,
            "gauges": {name: gauges[name] for name in sorted(gauges)},
            "histograms": {name: histograms[name] for name in sorted(histograms)},
        }
        self._prev_counters = counters
        self._prev_ts = now
        self._samples.append(sample)
        return sample

    def series(self, window: Optional[int] = None) -> List[Dict[str, Any]]:
        """The retained samples, oldest first (last ``window`` if given)."""
        items = list(self._samples)
        if window is not None and window >= 0:
            items = items[-window:] if window else []
        return items

    def __len__(self) -> int:
        return len(self._samples)

    # -- background sampling -------------------------------------------- #

    def start(self) -> None:
        """Sample every ``interval`` seconds on a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.interval):
                self.sample()

        self._thread = threading.Thread(
            target=run, name="obs-recorder", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None


# --------------------------------------------------------------------- #
# Prometheus exposition                                                   #
# --------------------------------------------------------------------- #

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(raw: str, prefix: str = "repro") -> str:
    name = _NAME_OK.sub("_", raw)
    if prefix:
        name = f"{prefix}_{name}"
    return name


def _split_labels(raw: str):
    """``base{key=value,...}`` -> (base, {key: value}); labels optional."""
    if "{" not in raw or not raw.endswith("}"):
        return raw, {}
    base, _, rest = raw.partition("{")
    labels: Dict[str, str] = {}
    for piece in rest[:-1].split(","):
        key, sep, value = piece.partition("=")
        if sep:
            labels[key.strip()] = value.strip()
    return base, labels


def _label_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    rendered = []
    for key in sorted(labels):
        value = (
            str(labels[key])
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        rendered.append(f'{_NAME_OK.sub("_", key)}="{value}"')
    return "{" + ",".join(rendered) + "}"


def _value_text(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def prometheus_text(
    snapshot: Dict[str, Any],
    prefix: str = "repro",
    extra_gauges: Optional[Dict[str, Any]] = None,
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    Counters become ``<prefix>_<name>_total`` counter series, gauges
    plain gauges, histograms summaries (``quantile`` labels plus
    ``_sum``/``_count``).  Series named ``base{key=value}`` in the
    registry (the serve tier's per-client counters) are grouped under one
    ``# TYPE`` line with proper label syntax.  ``extra_gauges`` lets a
    caller append liveness/readiness without touching the registry.
    """
    lines: List[str] = []
    grouped: Dict[str, List[str]] = {}
    order: List[str] = []
    for raw in sorted(snapshot.get("counters", {})):
        base, labels = _split_labels(raw)
        name = _metric_name(base, prefix) + "_total"
        if name not in grouped:
            grouped[name] = []
            order.append(name)
        grouped[name].append(
            f"{name}{_label_text(labels)} "
            f"{_value_text(snapshot['counters'][raw])}"
        )
    for name in order:
        lines.append(f"# TYPE {name} counter")
        lines.extend(grouped[name])
    for raw in sorted(snapshot.get("gauges", {})):
        base, labels = _split_labels(raw)
        name = _metric_name(base, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(
            f"{name}{_label_text(labels)} "
            f"{_value_text(snapshot['gauges'][raw])}"
        )
    for key in sorted(extra_gauges or {}):
        name = _metric_name(key, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_value_text(extra_gauges[key])}")
    for raw in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][raw]
        base, labels = _split_labels(raw)
        name = _metric_name(base, prefix)
        lines.append(f"# TYPE {name} summary")
        for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if q_key in summary:
                quantile = dict(labels)
                quantile["quantile"] = q_label
                lines.append(
                    f"{name}{_label_text(quantile)} "
                    f"{_value_text(summary[q_key])}"
                )
        lines.append(
            f"{name}_sum{_label_text(labels)} "
            f"{_value_text(summary.get('sum', 0))}"
        )
        lines.append(
            f"{name}_count{_label_text(labels)} "
            f"{_value_text(summary.get('count', 0))}"
        )
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# HTTP exposition                                                         #
# --------------------------------------------------------------------- #


class TelemetryHTTPServer:
    """A stdlib HTTP thread serving ``/metrics`` and ``/healthz``.

    ``metrics_text`` and ``health_json`` are zero-argument callables the
    handler invokes per request (they run on the HTTP thread and must be
    safe to call concurrently with the owner — the serve daemon's are
    plain dict reads).  ``/healthz`` answers 503 when the health payload
    reports ``ready`` false, so standard readiness probes work during
    drain.  ``port=0`` binds an ephemeral port, readable via ``port``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        metrics_text: Callable[[], str],
        health_json: Callable[[], Dict[str, Any]],
    ):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        owner = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    if self.path == "/metrics":
                        body = owner.metrics_text().encode("utf-8")
                        code = 200
                        ctype = "text/plain; version=0.0.4; charset=utf-8"
                    elif self.path in ("/healthz", "/health"):
                        payload = owner.health_json()
                        body = (json.dumps(payload, sort_keys=True) + "\n").encode(
                            "utf-8"
                        )
                        code = 200 if payload.get("ready") else 503
                        ctype = "application/json"
                    else:
                        body = b"not found\n"
                        code = 404
                        ctype = "text/plain"
                except Exception as exc:  # pragma: no cover - defensive
                    body = f"error: {type(exc).__name__}: {exc}\n".encode("utf-8")
                    code = 500
                    ctype = "text/plain"
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not spam the daemon's stderr

        self.metrics_text = metrics_text
        self.health_json = health_json
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="obs-http",
            daemon=True,
        )

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "TelemetryHTTPServer":
        self._thread.start()
        return self

    def stop(self, timeout: float = 2.0) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout)


# --------------------------------------------------------------------- #
# flight recorder                                                         #
# --------------------------------------------------------------------- #

FLIGHT_SCHEMA_VERSION = 1


def write_flight_record(
    path,
    tracer: RingTracer,
    recorder: TimeSeriesRecorder,
    registry: MetricsRegistry,
    health: Optional[Dict[str, Any]] = None,
    reason: str = "manual",
) -> Dict[str, Any]:
    """Dump the last window of spans and time-series to one JSON file.

    Atomic (write-then-rename), so a probe reading the file mid-dump
    never sees a torn record; repeated dumps overwrite — the flight
    recorder always holds the most recent window.
    """
    from repro.util.io import atomic_write_json

    payload = {
        "schema_version": FLIGHT_SCHEMA_VERSION,
        "reason": reason,
        "dumped_at": time.time(),
        "trace": tracer.export(),
        "series": recorder.series(),
        "metrics": registry.snapshot(),
        "health": health,
    }
    atomic_write_json(path, payload)
    return payload

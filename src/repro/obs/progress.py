"""A live single-line progress display with ETA for long sweeps.

The engine calls :meth:`ProgressLine.update` once per completed unit;
rendering is throttled to :attr:`ProgressLine.min_interval_s` so per-unit
cost stays negligible.  The line is drawn on stderr with carriage-return
rewriting and fully cleared on :meth:`ProgressLine.finish`, so it never
contaminates stdout (machine-readable output) or persists into the
engine summary that follows it.

Enablement is tri-state: ``True``/``False`` force it on or off
(``--progress``/``--no-progress``), ``None`` auto-detects a TTY — the
default keeps redirected/CI runs byte-stable.
"""

import sys
import time
from typing import Optional


class ProgressLine:
    """Renders ``label: done/total (pct%) elapsed Xs eta Ys`` on stderr."""

    def __init__(
        self,
        label: str,
        enabled: Optional[bool] = None,
        min_interval_s: float = 0.1,
    ):
        self.label = label
        self.min_interval_s = min_interval_s
        self._forced = enabled
        self.total = 0
        self.done = 0
        self._start = 0.0
        self._last_render = 0.0
        self._active = False

    @property
    def enabled(self) -> bool:
        if self._forced is not None:
            return self._forced
        try:
            return sys.stderr.isatty()
        except (AttributeError, ValueError):
            return False

    def begin(self, total: int) -> None:
        self.total = total
        self.done = 0
        self._start = time.perf_counter()
        self._last_render = 0.0
        if self.enabled and total > 0:
            self._active = True
            self._render(force=True)

    def update(self, done: int) -> None:
        self.done = done
        if self._active:
            self._render()

    def finish(self) -> None:
        if self._active:
            self._active = False
            # Clear the line so subsequent stderr output starts clean.
            sys.stderr.write("\r\x1b[2K")
            sys.stderr.flush()

    def _render(self, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_render < self.min_interval_s:
            return
        self._last_render = now
        elapsed = now - self._start
        pct = 100.0 * self.done / self.total if self.total else 100.0
        if self.done > 0 and self.done < self.total:
            eta = elapsed * (self.total - self.done) / self.done
            eta_text = f" eta {eta:.1f}s"
        else:
            eta_text = ""
        line = (
            f"{self.label}: {self.done}/{self.total}"
            f" ({pct:.0f}%) elapsed {elapsed:.1f}s{eta_text}"
        )
        sys.stderr.write(f"\r\x1b[2K{line}")
        sys.stderr.flush()


class MultiLineDisplay:
    """Redraws a block of lines in place — the multi-line ProgressLine.

    ``repro top`` renders its dashboard through this: on a TTY each
    :meth:`render` moves the cursor back over the previous frame and
    rewrites it (clearing each line, so shrinking frames leave no
    residue); on a pipe it just prints the frame, keeping scripted runs
    line-stable.  Same tri-state enablement as :class:`ProgressLine`.
    """

    def __init__(self, stream=None, enabled: Optional[bool] = None):
        self._stream = stream
        self._forced = enabled
        self._last_lines = 0

    @property
    def stream(self):
        return self._stream if self._stream is not None else sys.stdout

    @property
    def enabled(self) -> bool:
        """True when in-place rewriting (ANSI) is used."""
        if self._forced is not None:
            return self._forced
        try:
            return self.stream.isatty()
        except (AttributeError, ValueError):
            return False

    def render(self, lines) -> None:
        out = self.stream
        if self.enabled and self._last_lines:
            out.write(f"\x1b[{self._last_lines}A")
        if self.enabled:
            out.write("".join(f"\x1b[2K{line}\n" for line in lines))
        else:
            out.write("".join(f"{line}\n" for line in lines))
        out.flush()
        self._last_lines = len(lines)

    def close(self) -> None:
        self._last_lines = 0

"""Span-based tracing with Chrome trace-event JSON export.

One process-wide :data:`TRACER` collects *complete* spans (``"ph": "X"``)
and *instant* events (``"ph": "i"``) in the `trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
understood by Perfetto and ``chrome://tracing``.  Design constraints:

* **disabled is free** — :meth:`Tracer.span` on a disabled tracer returns a
  shared no-op context manager without allocating anything; call sites pay
  one attribute check and one method call, hot loops should guard with
  ``if TRACER.enabled:`` and pay only the attribute check;
* **cross-process** — every event records the emitting ``pid``/``tid``, and
  timestamps come from the shared wall clock (``time.time``), so spans
  collected inside pool workers and marshalled back to the parent (see
  :func:`repro.engine.executor._guarded_evaluate`) line up on one timeline
  with correct per-process tracks;
* **durations stay monotonic** — span duration is measured with
  ``time.perf_counter`` so a wall-clock step cannot produce negative spans.

Spans nest naturally (the context manager records at exit, so inner spans
precede their parents in the buffer; viewers reconstruct nesting from
``ts``/``dur`` containment per track).
"""

import functools
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

#: Event phases accepted by :func:`validate_trace` (the subset we emit plus
#: the common ones other tools add).
_KNOWN_PHASES = ("X", "B", "E", "i", "I", "M", "C")

_EVENT_REQUIRED_KEYS = frozenset({"ph", "name", "ts", "pid", "tid"})


class _NoopSpan:
    """Shared, reentrant do-nothing span returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **args: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class Span:
    """A live span; records one complete ("X") event when exited.

    An exception propagating out of the block annotates the span with an
    ``error`` argument (the exception type name) before re-raising, so
    failed work is visible on the timeline.
    """

    __slots__ = ("_tracer", "name", "cat", "args", "_wall_us", "_perf")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def set(self, **args: Any) -> "Span":
        """Attach extra arguments to the span (shown in the viewer)."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        self._wall_us = time.time() * 1e6
        self._perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_us = (time.perf_counter() - self._perf) * 1e6
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        event: Dict[str, Any] = {
            "ph": "X",
            "name": self.name,
            "cat": self.cat,
            "ts": self._wall_us,
            "dur": duration_us,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if self.args:
            event["args"] = dict(self.args)
        self._tracer.events.append(event)
        return False


class Tracer:
    """Collects trace events; disabled by default and cheap to leave off."""

    def __init__(self) -> None:
        self.enabled = False
        self.events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every collected event (does not change ``enabled``)."""
        self.events.clear()

    # ------------------------------------------------------------------ #
    # recording                                                           #
    # ------------------------------------------------------------------ #

    def span(self, name: str, cat: str = "repro", **args: Any):
        """A context manager timing one named span (no-op when disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "repro", **args: Any) -> None:
        """Record a zero-duration marker (e.g. a retry, a degradation)."""
        if not self.enabled:
            return
        event: Dict[str, Any] = {
            "ph": "i",
            "s": "p",  # process-scoped instant
            "name": name,
            "cat": cat,
            "ts": time.time() * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    # ------------------------------------------------------------------ #
    # cross-process marshalling                                           #
    # ------------------------------------------------------------------ #

    def mark(self) -> int:
        """Current buffer position; pair with :meth:`drain`."""
        return len(self.events)

    def drain(self, mark: int = 0) -> Sequence[Dict[str, Any]]:
        """Remove and return every event recorded since ``mark``.

        Workers drain their buffer after each unit and ship the events back
        in the unit's outcome; the parent re-absorbs them.
        """
        drained = tuple(self.events[mark:])
        del self.events[mark:]
        return drained

    def absorb(self, events: Iterable[Dict[str, Any]]) -> None:
        """Merge events marshalled from another process (or :meth:`drain`)."""
        if self.enabled:
            self.events.extend(events)

    # ------------------------------------------------------------------ #
    # export                                                              #
    # ------------------------------------------------------------------ #

    def export(self) -> Dict[str, Any]:
        """The collected timeline as a Chrome trace-event JSON object.

        Adds ``process_name`` metadata so the parent and each worker get
        readable track names in the viewer.
        """
        me = os.getpid()
        metadata: List[Dict[str, Any]] = []
        for pid in sorted({e["pid"] for e in self.events}):
            label = "repro (parent)" if pid == me else f"repro worker {pid}"
            metadata.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": label},
                }
            )
        return {
            "traceEvents": metadata + list(self.events),
            "displayTimeUnit": "ms",
        }

    def write(self, path) -> int:
        """Atomically write the exported timeline to ``path``.

        Returns the number of (non-metadata) events written.
        """
        from repro.util.io import atomic_write_json

        atomic_write_json(path, self.export())
        return len(self.events)


#: The process-wide tracer.  Workers get their own (fresh, disabled)
#: instance; the engine tells them when to collect (see ``observe`` in
#: :func:`repro.engine.executor._guarded_evaluate`).
TRACER = Tracer()


def traced(name: Optional[str] = None, cat: str = "repro") -> Callable:
    """Decorator tracing every call of the wrapped function as one span.

    ``name`` defaults to the function's qualified name.  When tracing is
    disabled the wrapper adds a single attribute check to each call.
    """

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not TRACER.enabled:
                return fn(*args, **kwargs)
            with TRACER.span(label, cat):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def validate_trace(obj: Any) -> None:
    """Raise ``ValueError`` unless ``obj`` is valid trace-event JSON.

    Checks the container shape and, for every event: required keys, a known
    phase, numeric ``ts``/``pid``/``tid``, a numeric non-negative ``dur`` on
    complete events, and ``args`` being an object when present.  Used by the
    tests and the CI trace-validation job.
    """
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        raise ValueError("trace must be an object with a 'traceEvents' list")
    for i, event in enumerate(obj["traceEvents"]):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        missing = _EVENT_REQUIRED_KEYS - event.keys()
        if missing:
            raise ValueError(f"event {i} is missing keys {sorted(missing)}")
        if event["ph"] not in _KNOWN_PHASES:
            raise ValueError(f"event {i} has unknown phase {event['ph']!r}")
        for key in ("ts", "pid", "tid"):
            if not isinstance(event[key], (int, float)):
                raise ValueError(f"event {i} field {key!r} is not numeric")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"complete event {i} needs a non-negative numeric 'dur'"
                )
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"event {i} has non-object 'args'")


def validate_trace_file(path) -> int:
    """Validate a trace file on disk; returns its event count."""
    import json

    with open(path) as handle:
        obj = json.load(handle)
    validate_trace(obj)
    return len(obj["traceEvents"])

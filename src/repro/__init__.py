"""repro — reproduction of *The Benefit of SMT in the Multi-Core Era* (ASPLOS 2014).

A multi-core design-space study library: nine power-equivalent chip designs
(mixes of big out-of-order SMT cores, medium out-of-order cores and small
in-order cores) evaluated under workloads with dynamically varying active
thread counts, with a Sniper-style interval performance model, a cycle-level
validation simulator, a McPAT-style power model, and synthetic SPEC/PARSEC
workload substitutes.

Quickstart::

    from repro import DesignSpaceStudy, uniform

    study = DesignSpaceStudy()
    curve = study.throughput_curve("4B", kind="heterogeneous")
    avg = study.aggregate_stp("4B", "heterogeneous", uniform(24))

See README.md for the full tour and DESIGN.md for the experiment index.
"""

from repro.core.designs import (
    ALTERNATIVE_DESIGNS,
    DESIGN_ORDER,
    DESIGNS,
    ChipDesign,
    all_designs,
    get_design,
)
from repro.core.distributions import (
    ThreadCountDistribution,
    datacenter,
    mirrored_datacenter,
    uniform,
)
from repro.core.dynamic import IdealDynamicMulticore
from repro.core.multithreaded import MultithreadedModel, MultithreadedResult, speedup
from repro.core.timeline import (
    ArrivalSimulation,
    ThreadCountTimeline,
    simulate_arrival_process,
    simulate_job_arrivals,
)
from repro.core.metrics import antt, energy_delay_product, harmonic_mean, stp
from repro.core.scenarios import SCENARIOS, Scenario, get_scenario, scenario_names
from repro.core.scheduler import Scheduler, big_core_affinity, optimize_coschedule
from repro.core.study import DesignSpaceStudy, MixResult
from repro.explore import ExploreConfig, run_explore
from repro.engine import Engine, EngineStats, ResultStore, WorkUnit
from repro.interval.contention import (
    ChipModel,
    ChipResult,
    Placement,
    ThreadSpec,
    isolated_ips,
)
from repro.interval.model import CoreEnvironment, IntervalCoreModel
from repro.microarch.config import (
    BIG,
    CORE_CONFIGS,
    MEDIUM,
    SMALL,
    CacheConfig,
    CoreConfig,
    CoreType,
    FunctionalUnits,
)
from repro.microarch.uncore import (
    DEFAULT_UNCORE,
    HIGH_BANDWIDTH_UNCORE,
    DramConfig,
    InterconnectConfig,
    UncoreConfig,
)
from repro.power.energy import EnergyPoint, best_edp, pareto_front
from repro.power.mcpat import CORE_POWER, ChipPowerModel, CorePowerParams
from repro.workloads.multiprogram import heterogeneous_mixes, homogeneous_mixes
from repro.workloads.profiles import BenchmarkProfile, MissRateCurve
from repro.workloads.spec import SPEC_ORDER, SPEC_PROFILES, all_profiles, get_profile

__version__ = "1.0.0"

__all__ = [
    # designs
    "ChipDesign",
    "DESIGNS",
    "DESIGN_ORDER",
    "ALTERNATIVE_DESIGNS",
    "all_designs",
    "get_design",
    # cores / uncore
    "CoreConfig",
    "CoreType",
    "CacheConfig",
    "FunctionalUnits",
    "BIG",
    "MEDIUM",
    "SMALL",
    "CORE_CONFIGS",
    "UncoreConfig",
    "DramConfig",
    "InterconnectConfig",
    "DEFAULT_UNCORE",
    "HIGH_BANDWIDTH_UNCORE",
    # workloads
    "BenchmarkProfile",
    "MissRateCurve",
    "SPEC_PROFILES",
    "SPEC_ORDER",
    "get_profile",
    "all_profiles",
    "homogeneous_mixes",
    "heterogeneous_mixes",
    # performance models
    "IntervalCoreModel",
    "CoreEnvironment",
    "ChipModel",
    "ChipResult",
    "Placement",
    "ThreadSpec",
    "isolated_ips",
    # study
    "DesignSpaceStudy",
    "MixResult",
    # evaluation engine
    "Engine",
    "EngineStats",
    "ResultStore",
    "WorkUnit",
    "Scheduler",
    "big_core_affinity",
    "optimize_coschedule",
    "IdealDynamicMulticore",
    # metrics / distributions
    "stp",
    "antt",
    "harmonic_mean",
    "energy_delay_product",
    "ThreadCountDistribution",
    "uniform",
    "datacenter",
    "mirrored_datacenter",
    "ThreadCountTimeline",
    "ArrivalSimulation",
    "simulate_job_arrivals",
    "simulate_arrival_process",
    # scenarios / adaptive exploration
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
    "ExploreConfig",
    "run_explore",
    # multithreaded workloads
    "MultithreadedModel",
    "MultithreadedResult",
    "speedup",
    # power / energy
    "ChipPowerModel",
    "CorePowerParams",
    "CORE_POWER",
    "EnergyPoint",
    "pareto_front",
    "best_edp",
]

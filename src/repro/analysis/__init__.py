"""Offline analyses: benchmark selection, CPI stacks, model cross-validation."""

from repro.analysis.cpi_stacks import cpi_stack, cpi_stack_table, smt_cpi_stacks
from repro.analysis.selection import relative_performance, select_representatives
from repro.analysis.validation import (
    CrossValidation,
    cross_validate,
    cross_validate_chip,
)

__all__ = [
    "relative_performance",
    "select_representatives",
    "CrossValidation",
    "cross_validate",
    "cross_validate_chip",
    "cpi_stack",
    "cpi_stack_table",
    "smt_cpi_stacks",
]

"""CPI stacks: where do the cycles go?

CPI stacks decompose a program's cycles-per-instruction into additive
components (base/dependence, branch mispredictions, i-cache, L2/LLC hits,
DRAM) — the canonical interval-analysis output (Eyerman et al., "A
performance counter architecture for computing accurate CPI components").
The interval core model computes these components natively; this module
exposes them as analysis tables:

* :func:`cpi_stack` — one benchmark on one core type, in isolation;
* :func:`cpi_stack_table` — the whole suite on one core, the at-a-glance
  view of why each benchmark lands where it does in the study;
* :func:`smt_cpi_stacks` — the same thread alone vs under n-way SMT,
  showing where SMT pressure goes (shrunken window -> exposed latency).
"""

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentTable
from repro.interval.contention import ChipModel, ChipResult, Placement, ThreadSpec
from repro.core.designs import ChipDesign
from repro.microarch.config import BIG, CoreConfig
from repro.microarch.uncore import DEFAULT_UNCORE, UncoreConfig
from repro.workloads.profiles import BenchmarkProfile

#: Stack components in display order, with human labels.
COMPONENTS = (
    ("base", "base (dependences/width)"),
    ("branch", "branch mispredictions"),
    ("l1i", "instruction cache"),
    ("l2hit", "L2 hits"),
    ("llchit", "LLC hits"),
    ("dram", "DRAM"),
)


def cpi_stack(
    profile: BenchmarkProfile,
    core: CoreConfig = BIG,
    co_runners: int = 0,
    uncore: Optional[UncoreConfig] = None,
) -> Dict[str, float]:
    """CPI components of ``profile`` on ``core``.

    With ``co_runners`` > 0, that many additional copies of the same
    profile share the core through SMT, and the returned stack is the
    first thread's (window partitioned, caches shared, loaded memory
    latency solved chip-wide).
    """
    n = 1 + co_runners
    design = ChipDesign(
        name=f"stack-{core.name}",
        cores=(core,),
        uncore=uncore if uncore is not None else DEFAULT_UNCORE,
    )
    placement = Placement.from_lists([[ThreadSpec(profile)] * n])
    result = ChipModel(design).evaluate(placement)
    perf = result.core_results[0].threads[0]
    stack = dict(perf.cpi_breakdown)
    # The bandwidth-sharing scale shows up as the gap between the
    # unconstrained CPI (the breakdown's sum) and the achieved CPI; report
    # it as an explicit "smt issue" component so the stack still sums.
    achieved_cpi = 1.0 / perf.ipc
    stack["smt_issue"] = max(0.0, achieved_cpi - sum(stack.values()))
    return stack


def cpi_stack_table(
    profiles: Sequence[BenchmarkProfile],
    core: CoreConfig = BIG,
    co_runners: int = 0,
) -> ExperimentTable:
    """CPI stacks for a suite of benchmarks on one core type."""
    keys = [key for key, _label in COMPONENTS] + ["smt_issue"]
    table = ExperimentTable(
        experiment_id="CPI stacks",
        title=(
            f"CPI components on the {core.name} core"
            + (f", {1 + co_runners}-way SMT" if co_runners else ", isolated")
        ),
        columns=["benchmark"] + keys + ["total CPI"],
    )
    for profile in profiles:
        stack = cpi_stack(profile, core, co_runners)
        table.add_row(
            benchmark=profile.name,
            **{k: stack.get(k, 0.0) for k in keys},
            **{"total CPI": sum(stack.values())},
        )
    return table


def smt_cpi_stacks(
    profile: BenchmarkProfile, core: CoreConfig = BIG, max_threads: Optional[int] = None
) -> ExperimentTable:
    """How one thread's CPI stack degrades as SMT co-runners pile on."""
    cap = max_threads if max_threads is not None else core.max_smt_contexts
    keys = [key for key, _label in COMPONENTS] + ["smt_issue"]
    table = ExperimentTable(
        experiment_id="SMT CPI stacks",
        title=f"{profile.name} on the {core.name} core vs SMT depth",
        columns=["threads"] + keys + ["total CPI"],
    )
    for n in range(1, cap + 1):
        stack = cpi_stack(profile, core, co_runners=n - 1)
        table.add_row(
            threads=n,
            **{k: stack.get(k, 0.0) for k in keys},
            **{"total CPI": sum(stack.values())},
        )
    return table

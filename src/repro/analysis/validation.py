"""Cross-validation of the interval (fast) tier against the cycle-level tier.

The design-space study runs on the interval model, as the paper ran Sniper.
To trust it, this module runs the same single-thread points through the
cycle-level simulator and reports per-benchmark IPC ratios and the Spearman
rank correlation between the two tiers — the repository's tests require the
rankings to agree and the ratios to stay within a band.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.designs import ChipDesign
from repro.interval.contention import isolated_ips
from repro.microarch.config import BIG, CoreConfig
from repro.sim.multicore import MulticoreSimulator, ThreadSim
from repro.workloads.profiles import BenchmarkProfile


@dataclass(frozen=True)
class CrossValidation:
    """Interval-vs-cycle agreement for a set of benchmarks on one core."""

    core_name: str
    interval_ipc: Dict[str, float]
    cycle_ipc: Dict[str, float]

    @property
    def ratios(self) -> Dict[str, float]:
        """cycle / interval IPC per benchmark (1.0 = perfect agreement)."""
        return {
            name: self.cycle_ipc[name] / self.interval_ipc[name]
            for name in self.interval_ipc
        }

    @property
    def rank_correlation(self) -> float:
        """Spearman rank correlation between the two tiers' IPC rankings."""
        names = sorted(self.interval_ipc)
        r1 = _ranks([self.interval_ipc[n] for n in names])
        r2 = _ranks([self.cycle_ipc[n] for n in names])
        n = len(names)
        if n < 2:
            return 1.0
        d2 = sum((a - b) ** 2 for a, b in zip(r1, r2))
        return 1.0 - 6.0 * d2 / (n * (n**2 - 1))


def _ranks(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=values.__getitem__)
    ranks = [0.0] * len(values)
    for rank, idx in enumerate(order):
        ranks[idx] = float(rank)
    return ranks


def cross_validate(
    profiles: Sequence[BenchmarkProfile],
    core: CoreConfig = BIG,
    instructions: int = 20_000,
    sample_interval: Optional[int] = None,
    sample_warmup: int = 600,
    sampling=None,
) -> CrossValidation:
    """Run each profile alone on ``core`` through both tiers.

    ``sample_interval`` switches the cycle-level runs to sampled
    simulation (see :mod:`repro.sim.sampling`): detailed windows plus
    functionally-warmed fast-forward, trading exactness for speed while
    holding CPI within a few percent — useful for large validation sweeps.
    ``sampling`` accepts an interval or ``"live"`` for adaptive live
    sampling (no interval to tune), exactly as
    :meth:`~repro.sim.multicore.MulticoreSimulator.run` does.
    """
    design = ChipDesign(name=f"xval-{core.name}", cores=(core,))
    sim = MulticoreSimulator(design)
    interval = {}
    cycle = {}
    for p in profiles:
        interval[p.name] = isolated_ips(p, core) / (core.frequency_ghz * 1e9)
        result = sim.run(
            [ThreadSim(p, core_index=0)],
            instructions,
            sample_interval=sample_interval,
            sample_warmup=sample_warmup,
            sampling=sampling,
        )
        cycle[p.name] = result.ipc_of(0)
    return CrossValidation(
        core_name=core.name, interval_ipc=interval, cycle_ipc=cycle
    )


def cross_validate_chip(
    design: ChipDesign,
    mix: Sequence[BenchmarkProfile],
    instructions: int = 10_000,
    sample_interval: Optional[int] = None,
    sample_warmup: int = 600,
    sampling=None,
) -> Tuple[float, float]:
    """Total chip IPC for one scheduled mix, from both tiers.

    Uses the study scheduler to place the mix, then evaluates the same
    placement in the interval solver and executes it in the cycle-level
    simulator.  Returns ``(interval_total_ipc, cycle_total_ipc)`` — the
    chip-level agreement check that includes SMT sharing, LLC contention,
    and bus/bank pressure rather than isolated threads.
    """
    from repro.core.scheduler import Scheduler
    from repro.interval.contention import ChipModel

    placement = Scheduler(design, smt=True).place(list(mix))
    interval_result = ChipModel(design).evaluate(placement)
    interval_total = sum(t.ipc for t in interval_result.threads)

    threads = []
    for core_index, specs in enumerate(placement.core_threads):
        for slot, spec in enumerate(specs):
            threads.append(
                ThreadSim(spec.profile, core_index=core_index, seed=11 + slot)
            )
    cycle_result = MulticoreSimulator(design).run(
        threads,
        instructions,
        sample_interval=sample_interval,
        sample_warmup=sample_warmup,
        sampling=sampling,
    )
    return interval_total, cycle_result.total_ipc

"""Benchmark selection by relative-performance coverage (Section 3.2).

The paper evaluated all 55 SPEC CPU2006 benchmark-input pairs on the three
core types and picked 12 covering the full range of big-core-relative
performance: the extremes plus evenly spaced in-between points.  This
module implements that procedure so users adding their own profiles can
re-derive a representative subset the same way.
"""

from typing import Dict, List, Optional, Sequence

from repro.interval.contention import isolated_ips
from repro.microarch.config import BIG, SMALL, CoreConfig
from repro.util import check_positive
from repro.workloads.profiles import BenchmarkProfile


def relative_performance(
    profile: BenchmarkProfile,
    reference: CoreConfig = BIG,
    target: CoreConfig = SMALL,
) -> float:
    """Performance of ``profile`` on ``target`` relative to ``reference``.

    The paper's selection metric: isolated IPS on the small (or medium)
    core divided by isolated IPS on the big core.
    """
    return isolated_ips(profile, target) / isolated_ips(profile, reference)


def select_representatives(
    profiles: Sequence[BenchmarkProfile],
    count: int,
    target: CoreConfig = SMALL,
) -> List[BenchmarkProfile]:
    """Pick ``count`` profiles covering the relative-performance range.

    Always includes the extremes (highest and lowest relative performance),
    then fills in the benchmarks closest to evenly spaced points in between
    — the paper's "good coverage" selection.
    """
    check_positive("count", count)
    if count > len(profiles):
        raise ValueError(
            f"cannot select {count} of {len(profiles)} profiles"
        )
    scored = sorted(profiles, key=lambda p: relative_performance(p, target=target))
    if count == 1:
        return [scored[0]]
    if count == len(profiles):
        return list(scored)

    lo = relative_performance(scored[0], target=target)
    hi = relative_performance(scored[-1], target=target)
    chosen: List[BenchmarkProfile] = []
    taken = set()
    for i in range(count):
        goal = lo + (hi - lo) * i / (count - 1)
        best: Optional[BenchmarkProfile] = None
        best_gap = float("inf")
        for p in scored:
            if p.name in taken:
                continue
            gap = abs(relative_performance(p, target=target) - goal)
            if gap < best_gap:
                best, best_gap = p, gap
        assert best is not None
        chosen.append(best)
        taken.add(best.name)
    return sorted(chosen, key=lambda p: relative_performance(p, target=target))

"""Synthetic workload substitutes for SPEC CPU2006 and PARSEC.

``profiles``/``spec`` provide statistical single-thread benchmark profiles;
``multiprogram`` builds balanced workload mixes; ``parsec`` models
multi-threaded fork/join applications with synchronization; ``tracegen``
emits instruction traces for the cycle-level simulator.
"""

"""Statistical workload profiles: the SPEC CPU2006 substitute.

The paper drives Sniper with SPEC CPU2006 binaries.  Those are licensed and
unavailable here, so each benchmark is replaced by a :class:`BenchmarkProfile`
— a small set of statistics that interval models (and our synthetic trace
generator) consume:

* instruction-mix fractions (loads/stores, branches),
* exploitable instruction-level parallelism, out-of-order and in-order,
* a branch misprediction rate,
* a *miss-rate curve* giving misses per kilo-instruction as a function of
  available cache capacity (one curve evaluated at L1, L2 and LLC-share
  capacities yields the per-level miss rates — the classic stack-distance
  view of a reference stream),
* the memory-level parallelism the program exposes.

This is precisely the information an interval simulator such as Sniper
extracts from the instruction stream, which is why profiles preserve the
design-space *shapes* the paper reports even though absolute SPEC numbers
cannot be reproduced.
"""

from dataclasses import dataclass

from repro.util import KB, check_fraction, check_positive


@dataclass(frozen=True)
class MissRateCurve:
    """Misses per kilo-instruction (MPKI) as a function of cache capacity.

    The curve is a bounded power law, the usual empirical fit for cache
    miss-rate behaviour::

        mpki(c) = clamp(mpki_ref * (ref_capacity / c) ** alpha,
                        floor_mpki, cap_mpki)

    ``floor_mpki`` models compulsory (cold) misses that no capacity removes;
    ``cap_mpki`` bounds the rate for degenerately small caches.

    Parameters
    ----------
    mpki_ref:
        MPKI when the reference capacity ``ref_bytes`` is available.
    alpha:
        Power-law exponent; larger means more capacity-sensitive.
    floor_mpki:
        Compulsory-miss floor (MPKI at infinite capacity).
    cap_mpki:
        Upper bound on MPKI for very small capacities.
    ref_bytes:
        Capacity at which ``mpki_ref`` is measured (default 32 KB).
    """

    mpki_ref: float
    alpha: float
    floor_mpki: float = 0.05
    cap_mpki: float = 120.0
    ref_bytes: int = 32 * KB

    def __post_init__(self) -> None:
        check_positive("mpki_ref", self.mpki_ref, allow_zero=True)
        check_positive("alpha", self.alpha, allow_zero=True)
        check_positive("floor_mpki", self.floor_mpki, allow_zero=True)
        check_positive("cap_mpki", self.cap_mpki)
        check_positive("ref_bytes", self.ref_bytes)
        if self.floor_mpki > self.cap_mpki:
            raise ValueError(
                f"floor_mpki ({self.floor_mpki}) must not exceed "
                f"cap_mpki ({self.cap_mpki})"
            )

    def mpki(self, capacity_bytes: float) -> float:
        """MPKI seen beyond a cache of ``capacity_bytes`` (monotone non-increasing).

        Memoized per instance: a design-space sweep evaluates the same
        bounded power law at the same handful of capacity shares tens of
        thousands of times per curve.  The memo lives outside the frozen
        dataclass fields (``object.__setattr__``), so hashing, equality
        and the engine's content keys — all of which walk
        ``dataclasses.fields()`` only — are unaffected.
        """
        try:
            memo = self._mpki_memo
        except AttributeError:
            memo = {}
            object.__setattr__(self, "_mpki_memo", memo)
        try:
            return memo[capacity_bytes]
        except KeyError:
            pass
        if capacity_bytes <= 0:
            value = self.cap_mpki
        else:
            raw = self.mpki_ref * (self.ref_bytes / capacity_bytes) ** self.alpha
            value = min(self.cap_mpki, max(self.floor_mpki, raw))
        if len(memo) >= 1024:  # sweeps revisit few distinct shares; stay bounded
            memo.clear()
        memo[capacity_bytes] = value
        return value

    def misses_per_instruction(self, capacity_bytes: float) -> float:
        """Convenience: :meth:`mpki` scaled to misses per single instruction."""
        return self.mpki(capacity_bytes) / 1000.0


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical description of a single-threaded benchmark.

    Attributes
    ----------
    name:
        Benchmark identifier (named after the SPEC benchmark it emulates).
    ilp:
        Issue parallelism sustainable with a large out-of-order window.
    ilp_inorder:
        Issue parallelism sustainable by a stall-on-use in-order pipeline;
        at most ``ilp``.
    mem_frac:
        Fraction of instructions that are loads or stores.
    branch_frac:
        Fraction of instructions that are branches.
    branch_mpki:
        Branch mispredictions per kilo-instruction.
    dcurve / icurve:
        Miss-rate curves for the data and instruction reference streams.
    mlp:
        Maximum memory-level parallelism (independent outstanding long-latency
        misses) the program exposes, given a sufficiently large window.
    """

    name: str
    ilp: float
    ilp_inorder: float
    mem_frac: float
    branch_frac: float
    branch_mpki: float
    dcurve: MissRateCurve
    icurve: MissRateCurve
    mlp: float = 2.0

    def __post_init__(self) -> None:
        check_positive("ilp", self.ilp)
        check_positive("ilp_inorder", self.ilp_inorder)
        if self.ilp_inorder > self.ilp + 1e-12:
            raise ValueError(
                f"{self.name}: ilp_inorder ({self.ilp_inorder}) cannot exceed "
                f"ilp ({self.ilp})"
            )
        check_fraction("mem_frac", self.mem_frac)
        check_fraction("branch_frac", self.branch_frac)
        check_positive("branch_mpki", self.branch_mpki, allow_zero=True)
        check_positive("mlp", self.mlp)
        if self.mem_frac + self.branch_frac > 1.0:
            raise ValueError(
                f"{self.name}: mem_frac + branch_frac must not exceed 1"
            )

    @property
    def compute_frac(self) -> float:
        """Fraction of plain ALU/FP instructions."""
        return 1.0 - self.mem_frac - self.branch_frac

    def cache_pressure(self, probe_bytes: float = 1024 * KB) -> float:
        """How hungry this benchmark is for shared cache capacity.

        Used as the weight in demand-proportional sharing of caches: a
        benchmark that still misses a lot at ``probe_bytes`` occupies a
        correspondingly larger fraction of a shared cache.
        """
        return max(1e-3, self.dcurve.mpki(probe_bytes))

"""The twelve SPEC-CPU2006-like benchmark profiles used in the study.

The paper selects 12 of the 55 SPEC CPU2006 benchmark-input pairs so that
their big-core-relative performance on the three core types covers the full
observed range.  Our synthetic stand-ins are named after those benchmarks and
are parameterized to land in the same qualitative classes the paper's
analysis relies on:

* **compute-bound, window-friendly** (``tonto``, ``calculix``, ``hmmer``,
  ``gamess``, ``h264ref``): high ILP, low miss rates — these gain the most
  from the big core's width and lose the most from sharing it (Figure 4a's
  class);
* **bandwidth-bound streaming** (``libquantum``, ``lbm``, ``milc``): large
  compulsory-miss floors that no cache capacity removes, high MLP — at high
  thread counts the off-chip bus saturates and flattens all designs
  (Figure 4b's class);
* **cache- and latency-sensitive** (``mcf``, ``omnetpp``, ``astar``): steep
  miss-rate curves and low MLP — these reward intelligent shared-cache usage;
* **branch-bound** (``gobmk``): frequent mispredictions cap useful ILP.

Absolute SPEC scores are *not* reproduced (the originals are licensed
binaries on licensed inputs); what is preserved is the spread of per-core
relative performance and the memory-intensity mix that drive every figure in
the paper's evaluation.
"""

from typing import Dict, List

from repro.util import KB
from repro.workloads.profiles import BenchmarkProfile, MissRateCurve

_QUIET_ICACHE = MissRateCurve(mpki_ref=0.5, alpha=0.5, floor_mpki=0.02, cap_mpki=20.0)
_BUSY_ICACHE = MissRateCurve(mpki_ref=4.0, alpha=0.6, floor_mpki=0.1, cap_mpki=40.0)

#: The 12 selected benchmark profiles, keyed by name.
SPEC_PROFILES: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in (
        # -- compute-bound, window-friendly ---------------------------------
        BenchmarkProfile(
            name="tonto",
            ilp=3.6,
            ilp_inorder=1.15,
            mem_frac=0.30,
            branch_frac=0.12,
            branch_mpki=1.5,
            dcurve=MissRateCurve(mpki_ref=5.0, alpha=0.45, floor_mpki=0.10),
            icurve=_QUIET_ICACHE,
            mlp=2.0,
        ),
        BenchmarkProfile(
            name="calculix",
            ilp=3.8,
            ilp_inorder=1.2,
            mem_frac=0.28,
            branch_frac=0.10,
            branch_mpki=0.8,
            dcurve=MissRateCurve(mpki_ref=3.0, alpha=0.40, floor_mpki=0.05),
            icurve=_QUIET_ICACHE,
            mlp=1.5,
        ),
        BenchmarkProfile(
            name="hmmer",
            ilp=3.9,
            ilp_inorder=1.25,
            mem_frac=0.30,
            branch_frac=0.08,
            branch_mpki=0.3,
            dcurve=MissRateCurve(mpki_ref=2.5, alpha=0.35, floor_mpki=0.05),
            icurve=_QUIET_ICACHE,
            mlp=1.5,
        ),
        BenchmarkProfile(
            name="gamess",
            ilp=3.4,
            ilp_inorder=1.15,
            mem_frac=0.28,
            branch_frac=0.11,
            branch_mpki=1.0,
            dcurve=MissRateCurve(mpki_ref=2.0, alpha=0.40, floor_mpki=0.05),
            icurve=_BUSY_ICACHE,
            mlp=1.5,
        ),
        BenchmarkProfile(
            name="h264ref",
            ilp=3.2,
            ilp_inorder=1.1,
            mem_frac=0.32,
            branch_frac=0.14,
            branch_mpki=2.5,
            dcurve=MissRateCurve(mpki_ref=6.0, alpha=0.50, floor_mpki=0.20),
            icurve=_BUSY_ICACHE,
            mlp=1.5,
        ),
        # -- bandwidth-bound streaming --------------------------------------
        BenchmarkProfile(
            name="libquantum",
            ilp=2.2,
            ilp_inorder=0.9,
            mem_frac=0.28,
            branch_frac=0.15,
            branch_mpki=0.4,
            dcurve=MissRateCurve(mpki_ref=28.0, alpha=0.15, floor_mpki=22.0),
            icurve=_QUIET_ICACHE,
            mlp=6.0,
        ),
        BenchmarkProfile(
            name="lbm",
            ilp=2.6,
            ilp_inorder=0.9,
            mem_frac=0.34,
            branch_frac=0.05,
            branch_mpki=0.3,
            dcurve=MissRateCurve(mpki_ref=24.0, alpha=0.20, floor_mpki=18.0),
            icurve=_QUIET_ICACHE,
            mlp=5.0,
        ),
        BenchmarkProfile(
            name="milc",
            ilp=2.4,
            ilp_inorder=0.85,
            mem_frac=0.36,
            branch_frac=0.06,
            branch_mpki=0.5,
            dcurve=MissRateCurve(mpki_ref=20.0, alpha=0.25, floor_mpki=14.0),
            icurve=_QUIET_ICACHE,
            mlp=4.0,
        ),
        # -- cache- and latency-sensitive -----------------------------------
        BenchmarkProfile(
            name="mcf",
            ilp=1.6,
            ilp_inorder=0.55,
            mem_frac=0.36,
            branch_frac=0.18,
            branch_mpki=8.0,
            dcurve=MissRateCurve(
                mpki_ref=45.0, alpha=0.50, floor_mpki=6.0, cap_mpki=90.0
            ),
            icurve=_QUIET_ICACHE,
            mlp=2.5,
        ),
        BenchmarkProfile(
            name="omnetpp",
            ilp=1.9,
            ilp_inorder=0.65,
            mem_frac=0.34,
            branch_frac=0.16,
            branch_mpki=5.0,
            dcurve=MissRateCurve(mpki_ref=25.0, alpha=0.45, floor_mpki=3.0),
            icurve=_QUIET_ICACHE,
            mlp=2.0,
        ),
        BenchmarkProfile(
            name="astar",
            ilp=2.0,
            ilp_inorder=0.7,
            mem_frac=0.33,
            branch_frac=0.15,
            branch_mpki=6.0,
            dcurve=MissRateCurve(mpki_ref=18.0, alpha=0.45, floor_mpki=2.0),
            icurve=_QUIET_ICACHE,
            mlp=1.8,
        ),
        # -- branch-bound ----------------------------------------------------
        BenchmarkProfile(
            name="gobmk",
            ilp=2.3,
            ilp_inorder=0.8,
            mem_frac=0.30,
            branch_frac=0.16,
            branch_mpki=9.0,
            dcurve=MissRateCurve(mpki_ref=8.0, alpha=0.40, floor_mpki=0.5),
            icurve=_BUSY_ICACHE,
            mlp=1.5,
        ),
    )
}

#: Canonical benchmark ordering for per-benchmark figures (Figure 9).
SPEC_ORDER: List[str] = [
    "astar",
    "calculix",
    "gamess",
    "gobmk",
    "h264ref",
    "hmmer",
    "lbm",
    "libquantum",
    "mcf",
    "milc",
    "omnetpp",
    "tonto",
]


def get_profile(name: str) -> BenchmarkProfile:
    """Look up one of the 12 SPEC-like profiles by name."""
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(SPEC_PROFILES)}"
        ) from None


def all_profiles() -> List[BenchmarkProfile]:
    """The 12 profiles in canonical order."""
    return [SPEC_PROFILES[name] for name in SPEC_ORDER]

"""Multi-program workload (mix) construction.

The paper evaluates two kinds of multi-program workloads (Section 3.2):

* **homogeneous** mixes — n copies of the same benchmark, for each of the 12
  selected benchmarks;
* **heterogeneous** mixes — 12 randomly constructed n-thread combinations
  per thread count, using *balanced random sampling* (Velasquez et al.
  [32]): across the 12 n-thread mixes every benchmark appears exactly the
  same number of times (n times, since 12 mixes x n slots / 12 benchmarks),
  which is more representative than fully random sampling.
"""

import random
from typing import List, Optional, Sequence

from repro.util import check_positive
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.spec import SPEC_ORDER, SPEC_PROFILES

#: A mix is an ordered list of benchmark names, one per active thread.
Mix = List[str]


def homogeneous_mixes(
    n_threads: int, benchmarks: Optional[Sequence[str]] = None
) -> List[Mix]:
    """One n-copy mix per benchmark (12 mixes for the default suite)."""
    check_positive("n_threads", n_threads)
    names = list(benchmarks) if benchmarks is not None else list(SPEC_ORDER)
    _validate_names(names)
    return [[name] * n_threads for name in names]


def heterogeneous_mixes(
    n_threads: int,
    num_mixes: int = 12,
    seed: int = 42,
    benchmarks: Optional[Sequence[str]] = None,
) -> List[Mix]:
    """Balanced random n-thread mixes (Velasquez-style sampling).

    Every benchmark appears the same number of times across all returned
    mixes whenever ``num_mixes * n_threads`` is a multiple of the benchmark
    count; otherwise the remainder slots are drawn round-robin from a
    shuffled benchmark order so counts differ by at most one.

    Deterministic for a fixed ``seed``.
    """
    check_positive("n_threads", n_threads)
    check_positive("num_mixes", num_mixes)
    names = list(benchmarks) if benchmarks is not None else list(SPEC_ORDER)
    _validate_names(names)

    rng = random.Random(seed ^ (n_threads * 0x9E3779B1))
    total_slots = num_mixes * n_threads
    per_benchmark, remainder = divmod(total_slots, len(names))
    pool: List[str] = []
    for name in names:
        pool.extend([name] * per_benchmark)
    extra_order = list(names)
    rng.shuffle(extra_order)
    pool.extend(extra_order[:remainder])
    rng.shuffle(pool)

    return [pool[i * n_threads : (i + 1) * n_threads] for i in range(num_mixes)]


def profiles_for(mix: Mix) -> List[BenchmarkProfile]:
    """Resolve a mix's benchmark names to profiles."""
    _validate_names(mix)
    return [SPEC_PROFILES[name] for name in mix]


def _validate_names(names: Sequence[str]) -> None:
    if not names:
        raise ValueError("need at least one benchmark name")
    unknown = sorted(set(names) - set(SPEC_PROFILES))
    if unknown:
        raise ValueError(
            f"unknown benchmarks {unknown}; known: {sorted(SPEC_PROFILES)}"
        )

"""Synthetic instruction-trace generation from statistical profiles.

The cycle-level simulator (:mod:`repro.sim`) consumes concrete instruction
traces.  Real SPEC/PARSEC traces are unavailable, so :class:`TraceGenerator`
synthesizes a deterministic trace whose *statistics* follow a
:class:`~repro.workloads.profiles.BenchmarkProfile`:

* the instruction mix follows ``mem_frac`` / ``branch_frac``;
* register dependencies are drawn with a geometric distance whose mean
  tracks the profile's ILP (longer dependence distances = more independent
  work in flight);
* data addresses and instruction-fetch lines both follow an LRU
  **stack-distance** process: with the compulsory probability a brand-new
  line is touched (streaming), otherwise a previously used line is reused at
  a Pareto-distributed stack depth whose tail exponent is the corresponding
  miss-curve ``alpha`` — by construction the trace's miss rate vs cache size
  follows the same power law the interval model uses, which is what makes
  the two tiers comparable;
* branches mispredict at the profile's rate.

Traces are fully deterministic for a given (profile, seed).
"""

import random
import zlib
from typing import List, NamedTuple

from repro.util import check_positive
from repro.workloads.profiles import BenchmarkProfile, MissRateCurve

#: Instruction kinds understood by the pipeline models.
KINDS = ("int", "fp", "muldiv", "load", "store", "branch")

#: Execution latencies in cycles (applied on top of memory latency for loads).
EXEC_LATENCY = {"int": 1, "fp": 3, "muldiv": 8, "load": 0, "store": 1, "branch": 1}

#: Of the memory instructions, this fraction are loads (rest are stores).
LOAD_SHARE = 0.7

#: Instructions per 64-byte code line (4-byte instructions).
INSTRS_PER_CODE_LINE = 16

_LINE = 64


class TraceInstruction(NamedTuple):
    """One instruction of a synthetic trace.

    ``dep_distance`` is the distance (in instructions) back to the producer
    of this instruction's input register; 0 means no register dependence.
    ``address`` is -1 for non-memory instructions.

    Branches carry both a concrete ``taken`` outcome (consumed by the
    cycle-level tier's real branch predictor) and a pre-drawn
    ``mispredicted`` flag (a shortcut for predictor-less consumers).

    A NamedTuple rather than a frozen dataclass: traces are built and
    consumed hundreds of thousands at a time, and tuple construction /
    C-level field access keeps both the generator and the simulator's
    dispatch loop off the ``object.__setattr__`` slow path.
    """

    kind: str
    pc: int
    address: int = -1
    dep_distance: int = 0
    mispredicted: bool = False
    taken: bool = False


class _StackDistanceProcess:
    """LRU stack-distance reference stream matching a power-law miss curve.

    Touches return line numbers.  With the compulsory probability (the
    curve's floor) a brand-new line is allocated; otherwise a previous line
    is reused at a Pareto(``alpha``) stack depth anchored so that
    ``P(depth > lines(ref_capacity)) == reuse-miss probability at ref``.
    Reuse depths beyond the current stack fall through to new lines, exactly
    like touching a not-yet-seen part of the working set.
    """

    #: Bound on the LRU reuse stack (lines), for pathological draws.
    MAX_STACK_LINES = 1 << 18

    def __init__(
        self,
        curve: MissRateCurve,
        refs_per_kilo_instruction: float,
        rng: random.Random,
        line_base: int,
        preseed_lines: int = 0,
    ):
        check_positive("refs_per_kilo_instruction", refs_per_kilo_instruction)
        self._rng = rng
        # Pre-seed the stack with an already-touched working set so that
        # deep reuses hit prior lines instead of degenerating into
        # compulsory misses on short traces (the analogue of starting a
        # SimPoint mid-execution rather than at program start).
        self._stack: List[int] = list(range(line_base, line_base + preseed_lines))
        self._next_new_line = line_base + preseed_lines
        miss_prob_ref = min(0.95, curve.mpki_ref / refs_per_kilo_instruction)
        self.compulsory_prob = min(
            0.9, curve.floor_mpki / refs_per_kilo_instruction
        )
        reuse_miss_ref = max(
            1e-4,
            (miss_prob_ref - self.compulsory_prob)
            / max(1e-9, 1.0 - self.compulsory_prob),
        )
        alpha = max(0.05, curve.alpha)
        self.alpha = alpha
        lines_ref = curve.ref_bytes / _LINE
        # P(depth > L) = (L0 / L) ** alpha, anchored at the reference size.
        self.pareto_l0 = lines_ref * reuse_miss_ref ** (1.0 / alpha)

    def touch(self) -> int:
        """Return the next line of the reference stream."""
        if self._stack and self._rng.random() >= self.compulsory_prob:
            depth = int(
                self.pareto_l0 * self._rng.random() ** (-1.0 / self.alpha)
            )
            depth = max(1, depth)
            if depth <= len(self._stack):
                line = self._stack[-depth]
                del self._stack[-depth]
                self._stack.append(line)
                return line
        line = self._next_new_line
        self._next_new_line += 1
        self._stack.append(line)
        if len(self._stack) > self.MAX_STACK_LINES:
            del self._stack[: len(self._stack) // 4]
        return line

    def working_set(self) -> List[int]:
        """Current stack contents, LRU to MRU (for cache warming)."""
        return list(self._stack)


class TraceGenerator:
    """Deterministic synthetic trace source for one benchmark profile."""

    #: Pre-seeded working-set sizes, in 64-byte lines (2 MB data, 256 KB code).
    DATA_PRESEED_LINES = 32_768
    CODE_PRESEED_LINES = 4_096

    def __init__(
        self, profile: BenchmarkProfile, seed: int = 7, address_offset: int = 0
    ):
        """``address_offset`` relocates the whole trace (data and code) so
        that co-running threads behave like separate processes with disjoint
        physical address spaces."""
        if address_offset < 0:
            raise ValueError(f"address_offset must be >= 0, got {address_offset}")
        self.profile = profile
        self.seed = seed
        self.address_offset = address_offset
        # crc32, not hash(): str hashing is salted per process (PYTHONHASHSEED),
        # which would make traces — and every simulation result built on them —
        # irreproducible across runs.
        self._rng = random.Random(zlib.crc32(profile.name.encode()) ^ seed)
        # Data and code streams draw from disjoint line-number ranges so the
        # caches see them as distinct addresses.
        self._data_stream = _StackDistanceProcess(
            profile.dcurve,
            max(1.0, 1000.0 * profile.mem_frac),
            self._rng,
            line_base=1,
            preseed_lines=self.DATA_PRESEED_LINES,
        )
        self._code_stream = _StackDistanceProcess(
            profile.icurve,
            1000.0 / INSTRS_PER_CODE_LINE,
            self._rng,
            line_base=1 << 34,
            preseed_lines=self.CODE_PRESEED_LINES,
        )
        self._code_line = self._code_stream.touch()
        self._code_offset = 0
        # Dependence chains: K concurrent chains yield a steady ILP of
        # roughly K / mean_producer_latency, so K is sized from the
        # profile's ILP and the execution-latency mix (~1.6 cycles/producer).
        self._n_chains = max(1, round(profile.ilp * 1.6))
        self._chain_last: List[int] = [-1] * self._n_chains
        self._instr_index = 0
        # Branch-outcome model: a fraction of static branches are "hard"
        # (near-50/50, data-dependent) and the rest strongly biased.  The
        # hard fraction is solved so a 2-bit-counter predictor lands near
        # the profile's mispredict rate: hard branches miss ~46 % of the
        # time, easy ones ~1 %.
        if profile.branch_frac > 0:
            target = min(0.5, profile.branch_mpki / 1000.0 / profile.branch_frac)
        else:
            target = 0.0
        self._hard_branch_frac = min(1.0, max(0.0, (target - 0.012) / 0.45))

    def warm_addresses(self) -> List[int]:
        """Byte addresses of the initial working set, LRU to MRU.

        Feeding these through a cache hierarchy in order reproduces the
        cache state an execution arriving at this point would have — the
        trace-driven analogue of warming from a SimPoint checkpoint.
        """
        offset = self.address_offset
        data = [line * _LINE + offset for line in self._data_stream.working_set()]
        code = [line * _LINE + offset for line in self._code_stream.working_set()]
        return code + data

    # ------------------------------------------------------------------ #
    # draws                                                               #
    # ------------------------------------------------------------------ #

    def _draw_kind(self) -> str:
        p = self.profile
        r = self._rng.random()
        if r < p.mem_frac:
            return "load" if self._rng.random() < LOAD_SHARE else "store"
        r -= p.mem_frac
        if r < p.branch_frac:
            return "branch"
        # Compute mix: mostly simple integer ops, some FP, few long ops.
        r2 = self._rng.random()
        if r2 < 0.80:
            return "int"
        if r2 < 0.95:
            return "fp"
        return "muldiv"

    def _draw_dep_distance(self) -> int:
        """Dependence distance from the chain-based ILP model.

        The trace maintains K concurrent dependence chains; each instruction
        extends one of them (mostly round-robin, occasionally a random
        chain) and depends on that chain's previous member.  K chains of
        unit-latency producers sustain an ILP of ~K regardless of window
        size, which is exactly the semantic of the profile's ``ilp`` field —
        unlike a random single-producer DAG, whose critical path is too
        shallow to constrain a large window.  ~8 % of instructions start a
        fresh chain (no register input).
        """
        i = self._instr_index
        self._instr_index += 1
        if self._rng.random() < 0.2:
            chain = self._rng.randrange(self._n_chains)
        else:
            chain = i % self._n_chains
        last = self._chain_last[chain]
        self._chain_last[chain] = i
        if last < 0 or self._rng.random() < 0.08:
            return 0
        return min(63, i - last)

    def _branch_outcome(self, pc: int) -> bool:
        """Concrete direction for the branch at ``pc``.

        Each static branch (identified by its pc) is deterministically
        classified as hard or easy via a pc hash; hard branches flip nearly
        uniformly, easy ones are taken with probability 0.96.
        """
        h = (pc * 0x9E3779B97F4A7C15) >> 40 & 0xFFFF
        if (h / 65536.0) < self._hard_branch_frac:
            return self._rng.random() < 0.5
        return self._rng.random() < 0.995

    def _next_pc(self) -> int:
        """Walk the synthetic code stream (4-byte instructions).

        Sixteen sequential instructions per code line, then the next line is
        drawn from the instruction-side stack-distance process — so i-cache
        miss rates follow the profile's i-curve at any cache size.
        """
        pc = self._code_line * _LINE + 4 * self._code_offset + self.address_offset
        self._code_offset += 1
        if self._code_offset >= INSTRS_PER_CODE_LINE:
            self._code_offset = 0
            self._code_line = self._code_stream.touch()
        return pc

    # ------------------------------------------------------------------ #
    # generation                                                          #
    # ------------------------------------------------------------------ #

    def generate(self, num_instructions: int) -> List[TraceInstruction]:
        """Produce the next ``num_instructions`` of the trace.

        The loop is the ``tracegen`` benchmark's hot path, so the per-draw
        helpers (:meth:`_draw_kind`, :meth:`_draw_dep_distance`,
        :meth:`_next_pc`, :meth:`_branch_outcome`) are inlined here with
        every RNG call issued in exactly the same order and with exactly
        the same underlying ``getrandbits`` consumption as the helpers —
        including ``randrange``'s rejection loop — so the produced trace is
        bit-identical to the unfused code (the helpers remain the readable
        reference and are covered by the same tests).
        """
        check_positive("num_instructions", num_instructions)
        p = self.profile
        mispredict_per_branch = (
            min(0.5, p.branch_mpki / 1000.0 / p.branch_frac) if p.branch_frac else 0.0
        )
        rng = self._rng
        rnd = rng.random
        getrandbits = rng.getrandbits
        mem_frac = p.mem_frac
        branch_frac = p.branch_frac
        offset = self.address_offset
        data_touch = self._data_stream.touch
        code_touch = self._code_stream.touch
        n_chains = self._n_chains
        chain_bits = n_chains.bit_length()
        chain_last = self._chain_last
        hard_frac = self._hard_branch_frac
        instr_index = self._instr_index
        code_line = self._code_line
        code_offset = self._code_offset
        instruction = TraceInstruction
        out: List[TraceInstruction] = []
        append = out.append
        for _ in range(num_instructions):
            # --- kind (see _draw_kind) ---
            r = rnd()
            if r < mem_frac:
                kind = "load" if rnd() < LOAD_SHARE else "store"
                # randrange(0, 64, 8) == 8 * _randbelow(8); _randbelow
                # draws bit_length(8) == 4 bits with rejection.
                base = data_touch() * _LINE
                sub = getrandbits(4)
                while sub >= 8:
                    sub = getrandbits(4)
                address = base + sub * 8 + offset
                is_branch = False
            else:
                address = -1
                if r - mem_frac < branch_frac:
                    kind = "branch"
                    is_branch = True
                else:
                    r2 = rnd()
                    kind = "int" if r2 < 0.80 else "fp" if r2 < 0.95 else "muldiv"
                    is_branch = False
            mispredicted = is_branch and rnd() < mispredict_per_branch
            # --- pc (see _next_pc) ---
            pc = code_line * _LINE + 4 * code_offset + offset
            code_offset += 1
            if code_offset >= INSTRS_PER_CODE_LINE:
                code_offset = 0
                code_line = code_touch()
            # --- taken (see _branch_outcome) ---
            if is_branch:
                h = (pc * 0x9E3779B97F4A7C15) >> 40 & 0xFFFF
                if (h / 65536.0) < hard_frac:
                    taken = rnd() < 0.5
                else:
                    taken = rnd() < 0.995
            else:
                taken = False
            # --- dep distance (see _draw_dep_distance) ---
            if rnd() < 0.2:
                # randrange(n_chains) == _randbelow(n_chains).
                chain = getrandbits(chain_bits)
                while chain >= n_chains:
                    chain = getrandbits(chain_bits)
            else:
                chain = instr_index % n_chains
            last = chain_last[chain]
            chain_last[chain] = instr_index
            instr_index += 1
            if last < 0 or rnd() < 0.08:
                dep = 0
            else:
                dep = instr_index - 1 - last
                if dep > 63:
                    dep = 63
            append(instruction(kind, pc, address, dep, mispredicted, taken))
        self._instr_index = instr_index
        self._code_line = code_line
        self._code_offset = code_offset
        return out

"""PARSEC-like multi-threaded workloads (the Section 5 substitute).

PARSEC binaries and inputs are not available here, so each benchmark is
replaced by a :class:`ParallelWorkload`: a fork/join phase structure —

* a **serial initialization** phase and a **serial finalization** phase
  (outside the region of interest, ROI);
* a parallel ROI consisting of ``rounds`` barrier intervals; in each round
  every thread receives a work share drawn (deterministically, per seed)
  with a per-app **imbalance**, and a per-round **serialized fraction**
  models critical sections / reductions executed by one thread while the
  others wait.

This reproduces the property the paper's Section 2.1 measures (Figure 1):
the number of *active* threads varies during the parallel phase purely due
to synchronization — threads that finished their share early wait at the
barrier, and serialized sections leave a single active thread.

Per-app parameters are chosen to land in the classes Figure 1 reports:
``blackscholes``/``canneal``/``raytrace`` keep ~20 threads active nearly all
the time; ``bodytrack``/``swaptions`` alternate between 1 and 20 active
threads (large serialized sections); ``ferret``/``freqmine`` (pipeline-
parallel) and ``dedup`` show broad distributions from load imbalance.
"""

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.util import check_fraction, check_positive
from repro.workloads.profiles import BenchmarkProfile, MissRateCurve

_QUIET_ICACHE = MissRateCurve(mpki_ref=0.4, alpha=0.5, floor_mpki=0.02, cap_mpki=20.0)


@dataclass(frozen=True)
class ParallelWorkload:
    """A fork/join multi-threaded application.

    Work quantities are in instructions.  ``imbalance_cv`` is the
    coefficient of variation of per-thread work within a barrier round
    (0 = perfectly balanced).  ``serial_fraction_per_round`` is the share
    of each round's work executed serially (critical sections, reductions),
    during which exactly one thread is active.
    """

    name: str
    kernel: BenchmarkProfile
    roi_work: float
    serial_init: float
    serial_final: float
    rounds: int
    imbalance_cv: float
    serial_fraction_per_round: float
    #: Critical-section handoff cost: the serialized time per round is
    #: multiplied by ``1 + cs_contention_per_thread * (n_threads - 1)``
    #: (lock transfer and cache-line ping-pong grow with contenders), which
    #: is what makes scaling taper beyond ~8-12 threads for the lock-heavy
    #: applications ("most applications scale well up to 8 threads, but not
    #: beyond", Section 5).
    cs_contention_per_thread: float = 0.0
    seed: int = 1234

    def __post_init__(self) -> None:
        check_positive("roi_work", self.roi_work)
        check_positive("serial_init", self.serial_init, allow_zero=True)
        check_positive("serial_final", self.serial_final, allow_zero=True)
        check_positive("rounds", self.rounds)
        check_positive("imbalance_cv", self.imbalance_cv, allow_zero=True)
        check_fraction("serial_fraction_per_round", self.serial_fraction_per_round)
        check_positive(
            "cs_contention_per_thread", self.cs_contention_per_thread, allow_zero=True
        )

    @property
    def total_work(self) -> float:
        return self.roi_work + self.serial_init + self.serial_final

    def round_shares(self, round_index: int, n_threads: int) -> List[float]:
        """Per-thread parallel work in one barrier round (deterministic).

        The parallel part of the round (total work minus the serialized
        fraction) is divided into ``n_threads`` shares whose spread follows
        ``imbalance_cv``; shares are drawn from a seeded RNG so every run of
        the same workload is identical.
        """
        check_positive("n_threads", n_threads)
        parallel_work = (
            self.roi_work
            / self.rounds
            * (1.0 - self.serial_fraction_per_round)
        )
        mean_share = parallel_work / n_threads
        if self.imbalance_cv == 0.0:
            return [mean_share] * n_threads
        rng = random.Random(
            (self.seed * 1_000_003 + round_index) ^ (n_threads * 0x9E3779B1)
        )
        raw = [
            max(0.05, rng.gauss(1.0, self.imbalance_cv)) for _ in range(n_threads)
        ]
        scale = parallel_work / sum(raw)
        return [r * scale for r in raw]

    def round_serial_work(self) -> float:
        """Serialized instructions per barrier round (critical sections)."""
        return self.roi_work / self.rounds * self.serial_fraction_per_round


def _kernel(
    name: str,
    ilp: float,
    ilp_inorder: float,
    mem_frac: float,
    branch_mpki: float,
    dcurve: MissRateCurve,
    mlp: float,
) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        ilp=ilp,
        ilp_inorder=ilp_inorder,
        mem_frac=mem_frac,
        branch_frac=0.12,
        branch_mpki=branch_mpki,
        dcurve=dcurve,
        icurve=_QUIET_ICACHE,
        mlp=mlp,
    )


#: The eight PARSEC-like applications, keyed by name.  ``roi_work`` is in
#: instructions; absolute values only set the (arbitrary) time unit, the
#: ratios between serial and parallel parts set the speedup behaviour.
PARSEC_WORKLOADS: Dict[str, ParallelWorkload] = {
    w.name: w
    for w in (
        # Embarrassingly parallel option pricing: tiny serial part, balanced.
        ParallelWorkload(
            name="blackscholes",
            kernel=_kernel(
                "blackscholes.k", 2.0, 1.2, 0.26, 1.0,
                MissRateCurve(mpki_ref=2.0, alpha=0.4, floor_mpki=0.2), 1.5,
            ),
            roi_work=1.0e9,
            serial_init=0.02e9,
            serial_final=0.01e9,
            rounds=10,
            imbalance_cv=0.015,
            serial_fraction_per_round=0.002,
            cs_contention_per_thread=0.01,
        ),
        # Simulated annealing on a large netlist: scales, but memory-bound.
        ParallelWorkload(
            name="canneal",
            kernel=_kernel(
                "canneal.k", 1.6, 0.7, 0.36, 5.0,
                MissRateCurve(mpki_ref=30.0, alpha=0.35, floor_mpki=8.0), 3.5,
            ),
            roi_work=1.0e9,
            serial_init=0.04e9,
            serial_final=0.01e9,
            rounds=12,
            imbalance_cv=0.02,
            serial_fraction_per_round=0.004,
            cs_contention_per_thread=0.01,
        ),
        # Raytracing: balanced tiles, compute-heavy, near-perfect ROI scaling.
        ParallelWorkload(
            name="raytrace",
            kernel=_kernel(
                "raytrace.k", 2.2, 1.1, 0.30, 3.0,
                MissRateCurve(mpki_ref=6.0, alpha=0.45, floor_mpki=0.5), 1.5,
            ),
            roi_work=1.2e9,
            serial_init=0.06e9,
            serial_final=0.01e9,
            rounds=16,
            imbalance_cv=0.02,
            serial_fraction_per_round=0.004,
            cs_contention_per_thread=0.01,
        ),
        # Body tracking: parallel bursts separated by big serial model
        # updates -> alternates between 1 and N active threads (Figure 1).
        ParallelWorkload(
            name="bodytrack",
            kernel=_kernel(
                "bodytrack.k", 2.0, 1.0, 0.30, 4.0,
                MissRateCurve(mpki_ref=8.0, alpha=0.45, floor_mpki=1.0), 1.8,
            ),
            roi_work=1.0e9,
            serial_init=0.05e9,
            serial_final=0.02e9,
            rounds=20,
            imbalance_cv=0.08,
            serial_fraction_per_round=0.055,
            cs_contention_per_thread=0.06,
        ),
        # Option pricing with coarse per-swaption chunks: few big work units,
        # so most of the time only a few threads still have work.
        ParallelWorkload(
            name="swaptions",
            kernel=_kernel(
                "swaptions.k", 2.4, 1.1, 0.28, 1.5,
                MissRateCurve(mpki_ref=3.0, alpha=0.4, floor_mpki=0.3), 1.5,
            ),
            roi_work=1.0e9,
            serial_init=0.02e9,
            serial_final=0.01e9,
            rounds=6,
            imbalance_cv=0.45,
            serial_fraction_per_round=0.03,
            cs_contention_per_thread=0.12,
        ),
        # Pipeline-parallel similarity search: stage imbalance leaves many
        # threads idle much of the time.
        ParallelWorkload(
            name="ferret",
            kernel=_kernel(
                "ferret.k", 1.9, 0.9, 0.32, 5.0,
                MissRateCurve(mpki_ref=12.0, alpha=0.4, floor_mpki=2.0), 2.0,
            ),
            roi_work=1.0e9,
            serial_init=0.05e9,
            serial_final=0.02e9,
            rounds=14,
            imbalance_cv=0.42,
            serial_fraction_per_round=0.03,
            cs_contention_per_thread=0.12,
        ),
        # Frequent itemset mining: deep task trees with poor balance.
        ParallelWorkload(
            name="freqmine",
            kernel=_kernel(
                "freqmine.k", 1.8, 0.9, 0.33, 6.0,
                MissRateCurve(mpki_ref=14.0, alpha=0.45, floor_mpki=1.5), 1.8,
            ),
            roi_work=1.0e9,
            serial_init=0.06e9,
            serial_final=0.02e9,
            rounds=12,
            imbalance_cv=0.48,
            serial_fraction_per_round=0.03,
            cs_contention_per_thread=0.12,
        ),
        # Pipeline-parallel compression: broad active-thread distribution.
        ParallelWorkload(
            name="dedup",
            kernel=_kernel(
                "dedup.k", 2.0, 0.9, 0.34, 4.0,
                MissRateCurve(mpki_ref=14.0, alpha=0.35, floor_mpki=3.0), 2.5,
            ),
            roi_work=1.0e9,
            serial_init=0.05e9,
            serial_final=0.03e9,
            rounds=16,
            imbalance_cv=0.32,
            serial_fraction_per_round=0.02,
            cs_contention_per_thread=0.15,
        ),
    )
}

#: Canonical ordering for per-benchmark figures (Figures 1 and 12).
PARSEC_ORDER: List[str] = [
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "ferret",
    "freqmine",
    "raytrace",
    "swaptions",
]


def get_workload(name: str) -> ParallelWorkload:
    """Look up a PARSEC-like workload by name."""
    try:
        return PARSEC_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(PARSEC_WORKLOADS)}"
        ) from None


def all_workloads() -> List[ParallelWorkload]:
    """The eight workloads in canonical order."""
    return [PARSEC_WORKLOADS[name] for name in PARSEC_ORDER]

"""Job, point and slab bookkeeping for the serve daemon.

Pure data structures — no asyncio, no I/O — mutated only on the server's
event-loop thread, which is what makes them testable synchronously:

* :class:`PointState` — one in-flight grid point, shared by every job
  that requested it (request coalescing: the second submit of an
  identical point attaches to the first's state instead of enqueueing a
  second computation);
* :class:`Job` — one client submission (point/sweep/figure/explore)
  tracking its point keys, completion countdown and final result;
* :class:`Slab` — the dispatch unit: a batch of points (or one opaque
  figure/explore task) evaluated in a single engine call.  Priorities act at slab
  granularity — an interactive point preempts a bulk sweep between
  slabs, never mid-slab;
* :class:`SlabScheduler` — a priority queue with per-client admission
  quotas and fair-share ordering.  A client over its quota gets its
  slabs *queued* in a backlog (admitted as earlier slabs finish), never
  errored.
"""

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass
class PointState:
    """One grid point, shared across every job that requested it."""

    key: str
    unit: Any  # WorkUnit
    done: bool = False
    payload: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    #: Jobs still waiting on this point (job ids).
    waiters: Set[str] = field(default_factory=set)


@dataclass
class Job:
    """One client submission and its completion bookkeeping."""

    id: str
    kind: str
    params: Dict[str, Any]
    client: str
    priority: int
    priority_name: str
    state: str = QUEUED
    #: Ordered unique point keys this job needs (empty for figure jobs).
    point_keys: List[str] = field(default_factory=list)
    #: Points not yet completed.
    remaining: int = 0
    #: How many of this job's points were coalesced onto other jobs' work.
    coalesced: int = 0
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Slabs of this job not yet completed (slab ids).
    open_slabs: Set[int] = field(default_factory=set)

    @property
    def total_points(self) -> int:
        # Opaque jobs (figure, explore) have no grid points; their one
        # opaque task counts as a single unit so done/total reads 0/1
        # while running, 1/1 done (rather than done_points going negative
        # from remaining == 1).
        from repro.serve.protocol import OPAQUE_KINDS

        if self.kind in OPAQUE_KINDS:
            return 1
        return len(self.point_keys)

    @property
    def done_points(self) -> int:
        return self.total_points - self.remaining

    def status_dict(self) -> Dict[str, Any]:
        """The poll/wait response body for this job."""
        out: Dict[str, Any] = {
            "job": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority_name,
            "client": self.client,
            "total_points": self.total_points,
            "done_points": self.done_points,
            "coalesced_points": self.coalesced,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.state == DONE and self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class Slab:
    """One dispatch unit: points evaluated in a single engine call."""

    id: int
    job_id: str
    client: str
    priority: int
    #: Point keys evaluated by this slab (unit objects live in PointState).
    point_keys: Tuple[str, ...] = ()
    #: Set for figure jobs: the opaque figure params to run instead.
    figure: Optional[Dict[str, Any]] = None
    #: Set for explore jobs: the opaque exploration params to run instead.
    explore: Optional[Dict[str, Any]] = None

    @property
    def opaque(self) -> bool:
        """True for a single-task slab (figure/explore) with no grid points."""
        return self.figure is not None or self.explore is not None


class SlabScheduler:
    """Priority queue of slabs with per-client quotas and fair share.

    Ordering: ``(priority, fair_counter, admission_seq)``.  The fair
    counter is the number of slabs the client had already been admitted
    when this slab entered the ready queue, so at equal priority a client
    that has consumed many dispatch slots sorts after a fresh client —
    round-robin without a separate queue per client.

    Admission: each client may have at most ``quota`` slabs admitted but
    not yet completed; further slabs wait in the client's backlog (FIFO)
    and are admitted as earlier ones finish.  Nothing is ever rejected
    for being over quota.
    """

    def __init__(self, quota: int = 4):
        if quota < 1:
            raise ValueError(f"quota must be >= 1, got {quota}")
        self.quota = quota
        self._ready: List[Tuple[int, int, int, Slab]] = []
        self._seq = itertools.count()
        self._backlog: Dict[str, List[Slab]] = {}
        self._admitted: Dict[str, int] = {}
        self._fair: Dict[str, int] = {}
        #: Slabs handed out by :meth:`next_slab` and not yet completed.
        self.in_flight = 0
        #: Grid points inside those in-flight slabs (an opaque slab counts
        #: as one) — the unit the engine's streaming dispatch works in.
        self.in_flight_points = 0
        #: Dispatches that jumped ahead of lower-priority ready work
        #: (an interactive slab leaving bulk slabs waiting).
        self.preemptions = 0

    # -- admission ------------------------------------------------------ #

    def submit(self, slab: Slab) -> bool:
        """Queue a slab; True if admitted now, False if backlogged."""
        if self._admitted.get(slab.client, 0) >= self.quota:
            self._backlog.setdefault(slab.client, []).append(slab)
            return False
        self._admit(slab)
        return True

    def _admit(self, slab: Slab) -> None:
        self._admitted[slab.client] = self._admitted.get(slab.client, 0) + 1
        fair = self._fair.get(slab.client, 0)
        self._fair[slab.client] = fair + 1
        heapq.heappush(
            self._ready, (slab.priority, fair, next(self._seq), slab)
        )

    # -- dispatch ------------------------------------------------------- #

    def next_slab(self) -> Optional[Slab]:
        """Highest-priority admitted slab, or None when idle."""
        if not self._ready:
            return None
        _, _, _, slab = heapq.heappop(self._ready)
        self.in_flight += 1
        self.in_flight_points += len(slab.point_keys) or 1
        if any(entry[0] > slab.priority for entry in self._ready):
            self.preemptions += 1
        return slab

    def complete(self, slab: Slab) -> List[Slab]:
        """Mark a dispatched slab finished; returns newly admitted slabs."""
        self.in_flight -= 1
        self.in_flight_points -= len(slab.point_keys) or 1
        return self._release(slab.client)

    def _release(self, client: str) -> List[Slab]:
        count = self._admitted.get(client, 0)
        if count <= 1:
            self._admitted.pop(client, None)
        else:
            self._admitted[client] = count - 1
        promoted: List[Slab] = []
        backlog = self._backlog.get(client)
        if backlog and self._admitted.get(client, 0) < self.quota:
            slab = backlog.pop(0)
            if not backlog:
                del self._backlog[client]
            self._admit(slab)
            promoted.append(slab)
        return promoted

    # -- cancellation --------------------------------------------------- #

    def discard_queued(self, should_drop) -> List[Slab]:
        """Remove queued (not dispatched) slabs for which ``should_drop``
        returns True; returns what was removed.  In-flight slabs are
        untouched — cancellation acts at slab granularity.

        Order matters here: ``_release`` may promote a backlog slab onto
        the ready heap, so the ready queue is partitioned *before* any
        release (never heappush into a list mid-iteration) and backlogs
        are filtered *before* any promotion (a dropped backlog slab must
        never be admitted)."""
        dropped_admitted: List[Slab] = []
        kept: List[Tuple[int, int, int, Slab]] = []
        for entry in self._ready:
            if should_drop(entry[3]):
                dropped_admitted.append(entry[3])
            else:
                kept.append(entry)
        if dropped_admitted:
            heapq.heapify(kept)
            self._ready = kept
        dropped: List[Slab] = []
        for client in list(self._backlog):
            backlog = self._backlog[client]
            remaining = [s for s in backlog if not should_drop(s)]
            dropped.extend(s for s in backlog if should_drop(s))
            if remaining:
                self._backlog[client] = remaining
            else:
                del self._backlog[client]
        for slab in dropped_admitted:
            self._release(slab.client)
        dropped.extend(dropped_admitted)
        return dropped

    # -- introspection -------------------------------------------------- #

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    @property
    def backlog_count(self) -> int:
        return sum(len(v) for v in self._backlog.values())

    def queue_dict(self) -> Dict[str, Any]:
        return {
            "quota": self.quota,
            "ready": self.ready_count,
            "in_flight": self.in_flight,
            "in_flight_points": self.in_flight_points,
            "preemptions": self.preemptions,
            "backlog": {c: len(v) for c, v in sorted(self._backlog.items())},
            "admitted": dict(sorted(self._admitted.items())),
        }

"""Wire protocol of the serve daemon: newline-delimited JSON messages.

Zero-dependency by construction: one JSON object per line (NDJSON) over a
unix-domain socket or TCP.  Each request carries an ``op`` and a client
``seq`` number; every response (and every streamed event) echoes the
``seq`` of the request it answers, so a pipelining client can correlate.

Requests::

    {"op": "submit",   "seq": 1, "kind": "point"|"sweep"|"figure",
     "params": {...}, "priority": "interactive"|"bulk", "client": "name"}
    {"op": "poll",     "seq": 2, "job": "job-000001"}
    {"op": "wait",     "seq": 3, "job": "job-000001", "timeout": 30.0}
    {"op": "stream",   "seq": 4, "job": "job-000001"}
    {"op": "stats",    "seq": 5}
    {"op": "cancel",   "seq": 6, "job": "job-000001"}
    {"op": "shutdown", "seq": 7}
    {"op": "ping",     "seq": 8}
    {"op": "metrics",  "seq": 9, "window": 60}
    {"op": "trace",    "seq": 10, "limit": 256}
    {"op": "health",   "seq": 11}

The live-telemetry ops (see ``docs/observability.md``) answer even while
the server drains: ``metrics`` returns the registry snapshot plus the
last ``window`` time-series samples, ``trace`` the last ``limit`` ring
spans as Chrome trace JSON, and ``health`` liveness/readiness/drain
state with SLO-style latency percentiles over the recent window.

Responses are ``{"seq": N, "ok": true, ...}`` or
``{"seq": N, "ok": false, "error": {"code": ..., "message": ...}}``.
``stream`` responds with a sequence of event lines
(``{"seq": N, "ok": true, "event": "slab"|"done"|"failed"|"cancelled",
...}``); the terminal event has ``"final": true``.

Job ``params``:

* ``point`` — ``{"design": str, "mix": [str, ...], "smt": bool}``
* ``sweep`` — ``{"designs": [str, ...], "kind": "homogeneous"|
  "heterogeneous", "max_threads": int, "smt": bool}``
* ``figure`` — ``{"id": str, "json": bool}``
* ``explore`` — ``{"scenario": str, ...}``: any other
  :class:`repro.explore.ExploreConfig` field may ride along (designs,
  kind, max_threads, smt, seed, eta, ...); the server validates the full
  set when it builds the config.

Floats survive the wire exactly: ``json.dumps`` renders them via
``repr`` (shortest round-trip form) and ``json.loads`` parses back the
identical double, which is what makes ``sweep --server`` byte-identical
to local execution.
"""

import json
from typing import Any, Dict, Optional, Tuple

#: Protocol version, echoed in ``ping``/``stats``; bump on breaking changes.
PROTOCOL_VERSION = 1

#: Line length ceiling: a parsed request larger than this is rejected
#: rather than buffered, bounding per-connection memory.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Known operations.
OPS = (
    "submit",
    "poll",
    "wait",
    "stream",
    "stats",
    "cancel",
    "shutdown",
    "ping",
    "metrics",
    "trace",
    "health",
)

#: Job kinds the server accepts.
JOB_KINDS = ("point", "sweep", "figure", "explore")

#: Job kinds that run as one opaque task on the dispatcher (no per-point
#: grid bookkeeping): done/total progress reads 0/1 then 1/1.
OPAQUE_KINDS = ("figure", "explore")

#: Priority classes, lowest number dispatches first.
PRIORITIES = {"interactive": 0, "bulk": 10}

#: Default priority per job kind: point queries are interactive latency
#: paths, grid sweeps, figures and explorations are bulk throughput paths.
DEFAULT_PRIORITY = {
    "point": "interactive",
    "sweep": "bulk",
    "figure": "bulk",
    "explore": "bulk",
}

#: Error codes carried in failure responses.
E_BAD_REQUEST = "bad-request"
E_UNKNOWN_JOB = "unknown-job"
E_DRAINING = "draining"
E_JOB_FAILED = "job-failed"
E_TIMEOUT = "timeout"


class ProtocolError(ValueError):
    """A malformed request line or message (connection-level error)."""

    def __init__(self, message: str, code: str = E_BAD_REQUEST):
        super().__init__(message)
        self.code = code


def encode(message: Dict[str, Any]) -> bytes:
    """One NDJSON frame: compact JSON plus the line terminator."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def ok(seq: Optional[int], **fields: Any) -> Dict[str, Any]:
    response = {"seq": seq, "ok": True}
    response.update(fields)
    return response


def error(seq: Optional[int], code: str, message: str) -> Dict[str, Any]:
    return {"seq": seq, "ok": False, "error": {"code": code, "message": message}}


def validate_request(message: Dict[str, Any]) -> Tuple[str, Optional[int]]:
    """Check the envelope; returns ``(op, seq)`` or raises ProtocolError."""
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; choose from {', '.join(OPS)}")
    seq = message.get("seq")
    if seq is not None and not isinstance(seq, int):
        raise ProtocolError("seq must be an integer when given")
    return op, seq


def validate_submit(message: Dict[str, Any]) -> Tuple[str, Dict[str, Any], str]:
    """Check a submit body; returns ``(kind, params, priority)``."""
    kind = message.get("kind")
    if kind not in JOB_KINDS:
        raise ProtocolError(
            f"unknown job kind {kind!r}; choose from {', '.join(JOB_KINDS)}"
        )
    params = message.get("params")
    if not isinstance(params, dict):
        raise ProtocolError("params must be a JSON object")
    priority = message.get("priority") or DEFAULT_PRIORITY[kind]
    if priority not in PRIORITIES:
        raise ProtocolError(
            f"unknown priority {priority!r}; choose from "
            f"{', '.join(PRIORITIES)}"
        )
    if kind == "point":
        if not isinstance(params.get("design"), str):
            raise ProtocolError("point params need a 'design' string")
        mix = params.get("mix")
        if (
            not isinstance(mix, list)
            or not mix
            or not all(isinstance(b, str) for b in mix)
        ):
            raise ProtocolError("point params need a non-empty 'mix' list")
    elif kind == "sweep":
        designs = params.get("designs")
        if (
            not isinstance(designs, list)
            or not designs
            or not all(isinstance(d, str) for d in designs)
        ):
            raise ProtocolError("sweep params need a non-empty 'designs' list")
        if params.get("kind") not in ("homogeneous", "heterogeneous"):
            raise ProtocolError(
                "sweep params need kind homogeneous|heterogeneous"
            )
        max_threads = params.get("max_threads")
        if not isinstance(max_threads, int) or max_threads < 1:
            raise ProtocolError("sweep params need max_threads >= 1")
    elif kind == "figure":
        if not isinstance(params.get("id"), str):
            raise ProtocolError("figure params need an 'id' string")
    elif kind == "explore":
        if not isinstance(params.get("scenario"), str):
            raise ProtocolError("explore params need a 'scenario' string")
        designs = params.get("designs")
        if designs is not None and (
            not isinstance(designs, list)
            or not designs
            or not all(isinstance(d, str) for d in designs)
        ):
            raise ProtocolError(
                "explore 'designs' must be a non-empty list of strings"
            )
    return kind, params, priority


def parse_address(text: str) -> Tuple[str, Any]:
    """Parse a ``--server``/listen address.

    Accepted forms:

    * ``unix:/path/to.sock`` — explicit unix socket;
    * ``/path/to.sock`` or ``./relative.sock`` — unix socket by shape;
    * ``host:port`` — TCP;
    * ``:port`` or a bare integer — TCP on localhost.

    Returns ``("unix", path)`` or ``("tcp", (host, port))``.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty server address")
    if text.startswith("unix:"):
        return "unix", text[len("unix:"):]
    if text.startswith(("/", "./", "~")):
        return "unix", text
    if text.isdigit():
        return "tcp", ("127.0.0.1", int(text))
    if ":" in text:
        host, _, port = text.rpartition(":")
        if not port.isdigit():
            raise ValueError(f"bad port in server address {text!r}")
        return "tcp", (host or "127.0.0.1", int(port))
    raise ValueError(
        f"cannot parse server address {text!r}; use unix:PATH, PATH, "
        f"HOST:PORT or :PORT"
    )

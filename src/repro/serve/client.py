"""Synchronous client for the serve daemon.

Plain blocking sockets — the client side needs no asyncio: it writes one
NDJSON request line and reads response lines until the matching ``seq``
arrives (or, for ``stream``, until the final event).  Used by the CLI's
``--server`` mode and by the bench/serve test harnesses.
"""

import socket
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.serve import protocol


class ServeError(RuntimeError):
    """The server answered with an error response."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


class ServeConnectionError(ConnectionError):
    """Could not reach (or lost) the serve daemon."""


class ServeClient:
    """One NDJSON connection to a serve daemon.

    Usable as a context manager; requests are sequential (one in flight
    per connection — open more clients for concurrency).
    """

    def __init__(self, address: str, client_name: Optional[str] = None,
                 timeout: Optional[float] = None):
        self.address = address
        self.client_name = client_name
        self._seq = 0
        family, target = protocol.parse_address(address)
        try:
            if family == "unix":
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(timeout)
                self._sock.connect(target)
            else:
                self._sock = socket.create_connection(target, timeout=timeout)
        except OSError as exc:
            raise ServeConnectionError(
                f"cannot connect to serve daemon at {address}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rb")

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    # -- plumbing ------------------------------------------------------- #

    def _read_response(self, seq: int) -> Dict[str, Any]:
        while True:
            line = self._file.readline()
            if not line:
                raise ServeConnectionError(
                    f"serve daemon at {self.address} closed the connection"
                )
            message = protocol.decode_line(line)
            if message.get("seq") == seq:
                return message
            # A response to an earlier seq (shouldn't happen on a
            # sequential connection) — skip it.

    def _request(self, op: str, **fields: Any) -> Dict[str, Any]:
        self._seq += 1
        seq = self._seq
        message = {"op": op, "seq": seq}
        message.update(fields)
        try:
            self._sock.sendall(protocol.encode(message))
        except OSError as exc:
            raise ServeConnectionError(
                f"lost connection to serve daemon at {self.address}: {exc}"
            ) from exc
        response = self._read_response(seq)
        if not response.get("ok", False):
            err = response.get("error") or {}
            raise ServeError(
                err.get("code", "unknown"), err.get("message", "unknown error")
            )
        return response

    # -- protocol ops --------------------------------------------------- #

    def ping(self) -> Dict[str, Any]:
        return self._request("ping")

    def stats(self) -> Dict[str, Any]:
        return self._request("stats")["stats"]

    def health(self) -> Dict[str, Any]:
        """Liveness/readiness/drain state plus recent-window SLO latencies."""
        return self._request("health")["health"]

    def metrics(self, window: Optional[int] = None) -> Dict[str, Any]:
        """The daemon's live metrics snapshot and recent time series.

        ``window`` caps how many trailing time-series samples ride along
        (None returns the full retained ring).
        """
        fields: Dict[str, Any] = {}
        if window is not None:
            fields["window"] = window
        return self._request("metrics", **fields)["metrics"]

    def trace(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The last ``limit`` spans from the daemon's continuous tracer,
        as Chrome trace-event JSON (loadable in Perfetto)."""
        fields: Dict[str, Any] = {}
        if limit is not None:
            fields["limit"] = limit
        return self._request("trace", **fields)["trace"]

    def submit(
        self,
        kind: str,
        params: Dict[str, Any],
        priority: Optional[str] = None,
    ) -> str:
        """Submit a job; returns its id immediately."""
        fields: Dict[str, Any] = {"kind": kind, "params": params}
        if priority is not None:
            fields["priority"] = priority
        if self.client_name is not None:
            fields["client"] = self.client_name
        return self._request("submit", **fields)["job"]

    def poll(self, job: str) -> Dict[str, Any]:
        return self._request("poll", job=job)

    def wait(self, job: str, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the job is terminal; raises on failed/timeout."""
        status = self._request("wait", job=job, timeout=timeout)
        if status["state"] == "failed":
            raise ServeError(
                protocol.E_JOB_FAILED, status.get("error", "job failed")
            )
        return status

    def stream(self, job: str) -> Iterator[Dict[str, Any]]:
        """Yield progress events until the job's terminal event."""
        self._seq += 1
        seq = self._seq
        try:
            self._sock.sendall(
                protocol.encode({"op": "stream", "seq": seq, "job": job})
            )
        except OSError as exc:
            raise ServeConnectionError(
                f"lost connection to serve daemon at {self.address}: {exc}"
            ) from exc
        while True:
            event = self._read_response(seq)
            if not event.get("ok", False):
                err = event.get("error") or {}
                raise ServeError(
                    err.get("code", "unknown"), err.get("message", "?")
                )
            yield event
            if event.get("final"):
                return

    def cancel(self, job: str) -> Dict[str, Any]:
        return self._request("cancel", job=job)

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit."""
        return self._request("shutdown")

    # -- conveniences --------------------------------------------------- #

    def point(
        self,
        design: str,
        mix: List[str],
        smt: bool = True,
        priority: str = "interactive",
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Evaluate one (design, mix, smt) point; returns its payload."""
        job = self.submit(
            "point", {"design": design, "mix": list(mix), "smt": smt}, priority
        )
        return self.wait(job, timeout=timeout)["result"]["point"]

    def sweep(
        self,
        designs: List[str],
        kind: str,
        max_threads: int,
        smt: bool = True,
        priority: str = "bulk",
        timeout: Optional[float] = None,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Run a full sweep grid; returns the ``mean_stp`` result block."""
        job = self.submit(
            "sweep",
            {
                "designs": list(designs),
                "kind": kind,
                "max_threads": max_threads,
                "smt": smt,
            },
            priority,
        )
        if on_progress is not None:
            final = None
            for event in self.stream(job):
                on_progress(event)
                if event.get("final"):
                    final = event
            if final is None or final.get("state") != "done":
                raise ServeError(
                    protocol.E_JOB_FAILED,
                    (final or {}).get("error", "sweep did not complete"),
                )
            return final["result"]
        return self.wait(job, timeout=timeout)["result"]

    def figure(
        self, figure_id: str, timeout: Optional[float] = None
    ) -> List[Dict[str, str]]:
        """Regenerate one figure; returns its rendered tables."""
        job = self.submit("figure", {"id": figure_id})
        return self.wait(job, timeout=timeout)["result"]["tables"]

    def explore(
        self, params: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Run one adaptive exploration; returns its summary dict.

        ``params`` carries :class:`repro.explore.ExploreConfig` fields
        (``scenario`` is required) and is validated server-side.
        """
        job = self.submit("explore", params)
        return self.wait(job, timeout=timeout)["result"]["explore"]


def wait_for_server(
    address: str, timeout: float = 30.0, interval: float = 0.05
) -> None:
    """Block until a daemon answers ``ping`` at ``address`` (startup races)."""
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(address, timeout=5.0) as client:
                client.ping()
            return
        except (ServeConnectionError, OSError) as exc:
            last_error = exc
            time.sleep(interval)
    raise ServeConnectionError(
        f"no serve daemon answered at {address} within {timeout}s: {last_error}"
    )

"""Sweep-as-a-service: the resident evaluation daemon and its client.

``python -m repro serve`` boots :class:`~repro.serve.server.SweepServer`
around one warm engine; ``sweep --server`` / ``figure --server`` talk to
it through :class:`~repro.serve.client.ServeClient`.  See
``docs/serving.md`` for the protocol reference.
"""

from repro.serve.client import (
    ServeClient,
    ServeConnectionError,
    ServeError,
    wait_for_server,
)
from repro.serve.protocol import PROTOCOL_VERSION, parse_address
from repro.serve.server import ServeConfig, ServerHandle, SweepServer

__all__ = [
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeConfig",
    "ServeConnectionError",
    "ServeError",
    "ServerHandle",
    "SweepServer",
    "parse_address",
    "wait_for_server",
]

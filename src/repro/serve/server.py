"""The resident evaluation daemon: ``python -m repro serve``.

One long-lived process owns one warm :class:`~repro.engine.executor.Engine`
— process pool, persistent content-addressed
:class:`~repro.engine.store.ResultStore` (dir or sqlite backend), and the
interval tier's warm-start hints — and serves an async job API over
newline-delimited JSON (:mod:`repro.serve.protocol`) on a unix socket or
TCP port.  Every ``sweep``/``figure``/``point`` request that used to pay
import, pool-spawn and store-open costs per CLI invocation instead rides
the warm engine.

Inside the server:

* **request coalescing** — grid points are identified by the engine's
  content keys; a second job requesting a point already in flight
  attaches to the first computation instead of enqueueing a duplicate
  (``serve.points_coalesced``);
* **priority scheduling** — dispatch happens at *slab* granularity
  through :class:`~repro.serve.jobs.SlabScheduler`: an interactive point
  query jumps ahead of the remaining slabs of a bulk sweep, but never
  preempts a running slab;
* **per-client quotas** — each client may have a bounded number of slabs
  admitted at once; excess slabs are backlogged (FIFO, fair-share across
  clients), never rejected;
* **graceful drain** — SIGTERM (or the ``shutdown`` op) stops admission,
  finishes every accepted job, persists the engine run summary and exits
  0.  A second SIGTERM cancels queued jobs and exits after the running
  slab.

Engine evaluation runs on a single dispatcher thread, so the engine (and
its process pool) is never entered concurrently; job bookkeeping runs on
the event-loop thread only.  The per-unit SIGALRM timeout cannot arm on
the dispatcher thread — the engine degrades it to no-timeout with a
structured warning (see :func:`repro.engine.executor._deadline`).
"""

import asyncio
import concurrent.futures
import os
import signal
import socket as socket_module
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import METRICS, TRACER, MetricsRegistry, get_logger
from repro.obs.live import (
    RingTracer,
    RollingHistogram,
    TelemetryHTTPServer,
    TimeSeriesRecorder,
    prometheus_text,
    tee_instant,
    tee_span,
    write_flight_record,
)
from repro.serve import protocol
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    PointState,
    Slab,
    SlabScheduler,
)

_LOG = get_logger("serve")

#: Default points per dispatch slab (matches the CLI's engine default).
DEFAULT_SLAB_SIZE = 32

#: Default per-client admission quota (slabs admitted at once).
DEFAULT_QUOTA = 4

#: Default number of terminal jobs kept for poll/wait before eviction.
DEFAULT_MAX_FINISHED_JOBS = 512

#: Default time-series sampling interval (seconds) and ring capacity.
DEFAULT_RECORD_INTERVAL = 1.0
DEFAULT_RECORD_WINDOW = 512

#: Default continuous-tracer ring capacity (spans kept live).
DEFAULT_TRACE_RING = 2048

#: Observations kept per rolling SLO histogram (recent-window p50/p95/p99).
DEFAULT_SLO_WINDOW = 1024

#: Distinct clients tracked with labelled per-client counters before the
#: rest fold into one ``client=other`` series (anonymous ``conn-N`` names
#: would otherwise grow the registry without bound).
MAX_CLIENT_LABELS = 64


@dataclass
class ServeConfig:
    """Everything the daemon needs to listen and evaluate."""

    #: Listen address: ``unix:PATH`` / ``PATH`` / ``HOST:PORT`` / ``:PORT``.
    listen: str = "unix:repro-serve.sock"
    jobs: int = 1
    cache_dir: Optional[str] = None
    no_cache: bool = False
    store_backend: str = "dir"
    retries: int = 1
    unit_timeout: Optional[float] = None
    slab_size: int = DEFAULT_SLAB_SIZE
    #: Worker-pool lifetime ("persistent" keeps one warm pool across jobs;
    #: "per-call" rebuilds a process pool per engine call).
    pool: str = "persistent"
    quota: int = DEFAULT_QUOTA
    #: Terminal jobs retained for poll/wait; older ones are evicted so a
    #: long-lived daemon's job table stays bounded.
    max_finished_jobs: int = DEFAULT_MAX_FINISHED_JOBS
    #: Serve Prometheus ``/metrics`` and ``/healthz`` on this port when
    #: set (0 binds an ephemeral port, readable via ``http_address``).
    http_port: Optional[int] = None
    http_host: str = "127.0.0.1"
    #: Time-series recorder: sampling interval and ring capacity.
    record_interval: float = DEFAULT_RECORD_INTERVAL
    record_window: int = DEFAULT_RECORD_WINDOW
    #: Continuous-tracer ring capacity (spans held live).
    trace_ring: int = DEFAULT_TRACE_RING
    #: Write a flight record (spans + time-series + metrics) to this file
    #: on SIGUSR1 and when the drain completes.
    flight_path: Optional[str] = None


class SweepServer:
    """Asyncio NDJSON server around one warm engine."""

    def __init__(self, config: ServeConfig, install_signals: bool = True):
        self.config = config
        self.install_signals = install_signals
        self.engine = self._build_engine(config)
        # Design lookup, mix enumeration and the reference uncore come from
        # a default study — the exact objects the local CLI sweep uses, so
        # content keys (and therefore store records) match byte-for-byte.
        from repro.core.study import DesignSpaceStudy

        self.study = DesignSpaceStudy()
        self.started_at = time.time()
        self.draining = False
        self._drain_hard = False
        self._jobs: Dict[str, Job] = {}
        self._points: Dict[str, PointState] = {}
        self._slabs: Dict[int, Slab] = {}
        self._scheduler = SlabScheduler(quota=config.quota)
        self._job_seq = 0
        self._slab_seq = 0
        self._conn_seq = 0
        self.finished_order: List[str] = []
        self.counters: Dict[str, int] = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "points_requested": 0,
            "points_coalesced": 0,
            "slabs_dispatched": 0,
        }
        # Live telemetry (docs/observability.md, "Live telemetry").  The
        # server owns a private always-on registry: the *global* METRICS
        # is reset by every local CLI run's teardown, which would wipe a
        # same-process daemon's history mid-flight.  serve.* counters are
        # still mirrored into METRICS when it is enabled (--metrics).
        self.metrics = MetricsRegistry()
        self.metrics.enable()
        self.ring_tracer = RingTracer(cap=config.trace_ring)
        self.recorder = TimeSeriesRecorder(
            self.metrics,
            interval=config.record_interval,
            capacity=config.record_window,
            pre_sample=self._refresh_gauges,
        )
        #: Recent-window latency distributions backing the ``health`` op.
        self.slo: Dict[str, RollingHistogram] = {
            "queue_wait_seconds": RollingHistogram(DEFAULT_SLO_WINDOW),
            "run_seconds": RollingHistogram(DEFAULT_SLO_WINDOW),
            "e2e_seconds": RollingHistogram(DEFAULT_SLO_WINDOW),
            "slab_seconds": RollingHistogram(DEFAULT_SLO_WINDOW),
            "stream_emit_seconds": RollingHistogram(DEFAULT_SLO_WINDOW),
        }
        self._client_labels: set = set()
        self.http: Optional[TelemetryHTTPServer] = None
        self.http_address: Optional[str] = None
        # Event-loop plumbing (bound inside _main).
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._work_available: Optional[asyncio.Event] = None
        self._dispatch_enabled: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._done_events: Dict[str, asyncio.Event] = {}
        self._streams: Dict[str, List[asyncio.Queue]] = {}
        self._connections: set = set()  # open StreamWriters, for drain
        # One dispatcher thread: the engine is entered serially, always.
        self._dispatch_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-dispatch"
        )
        # A separate prep thread so submit decomposition (content-key
        # derivation for thousands of points) neither blocks the event
        # loop nor queues behind a long-running slab.
        self._prep_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-prep"
        )
        #: Set once listening (threading.Event: readable off-loop).
        self.ready = threading.Event()
        self.bound_address: Optional[str] = None

    @staticmethod
    def _build_engine(config: ServeConfig):
        from repro.engine import Engine, ResultStore

        store = (
            None
            if config.no_cache
            else ResultStore(config.cache_dir, backend=config.store_backend)
        )
        # The server dispatches config.slab_size points per engine call;
        # the engine must split that batch across its workers, so its own
        # slab size is the per-worker share (otherwise one dispatch slab
        # would collapse into a single worker unit and serialize the pool).
        if config.jobs > 1:
            engine_slab = max(1, -(-config.slab_size // config.jobs))
        else:
            engine_slab = config.slab_size
        return Engine(
            jobs=config.jobs,
            store=store,
            retries=config.retries,
            unit_timeout=config.unit_timeout,
            slab_size=engine_slab if engine_slab > 1 else None,
            pool=config.pool,
        )

    # ------------------------------------------------------------------ #
    # telemetry plumbing                                                  #
    # ------------------------------------------------------------------ #

    def _count(self, name: str, amount: float = 1) -> None:
        """Record a serve counter in the live registry (and mirror it into
        the global METRICS when ``--metrics`` enabled it)."""
        self.metrics.inc(name, amount)
        METRICS.inc(name, amount)

    def _observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)
        METRICS.observe(name, value)

    def _observe_latency(self, name: str, slo_key: str, value: float) -> None:
        """One latency sample: registry histogram + rolling SLO window."""
        self._observe(name, value)
        self.slo[slo_key].observe(value)

    def _span(self, name: str, **args: Any):
        return tee_span((self.ring_tracer, TRACER), name, cat="serve", **args)

    def _instant(self, name: str, **args: Any) -> None:
        tee_instant((self.ring_tracer, TRACER), name, cat="serve", **args)

    def _client_label(self, client: str) -> str:
        """Per-client counter label, capped at MAX_CLIENT_LABELS distinct
        names; later clients share one ``other`` series so anonymous
        connection names cannot grow the registry without bound."""
        if client in self._client_labels:
            return client
        if len(self._client_labels) < MAX_CLIENT_LABELS:
            self._client_labels.add(client)
            return client
        return "other"

    def _refresh_gauges(self) -> None:
        """Point-in-time scheduler/server gauges (also the recorder's
        pre-sample hook, so every time-series sample carries them).  Runs
        on the recorder thread too: reads are best-effort (the event loop
        may be mutating the tables) and a racing tick is simply skipped
        by the caller."""
        m = self.metrics
        m.set_gauge("serve.ready_slabs", self._scheduler.ready_count)
        m.set_gauge("serve.backlog_slabs", self._scheduler.backlog_count)
        m.set_gauge("serve.in_flight_slabs", self._scheduler.in_flight)
        m.set_gauge("serve.in_flight_points", self._scheduler.in_flight_points)
        m.set_gauge("serve.preemptions", self._scheduler.preemptions)
        m.set_gauge("serve.pool_workers", len(self.engine.executor.pool_pids()))
        m.set_gauge("serve.pool_starts", self.engine.executor.pool_starts)
        m.set_gauge("serve.pool_reuses", self.engine.executor.pool_reuses)
        m.set_gauge("serve.worker_respawns", self.engine.executor.worker_respawns)
        m.set_gauge("serve.active_jobs", self._active_jobs())
        m.set_gauge("serve.tracked_jobs", len(self._jobs))
        m.set_gauge("serve.tracked_points", len(self._points))
        m.set_gauge("serve.trace_ring_events", len(self.ring_tracer.events))
        m.set_gauge("serve.trace_ring_dropped", self.ring_tracer.dropped)
        m.set_gauge(
            "serve.uptime_seconds", round(time.time() - self.started_at, 3)
        )
        m.set_gauge("serve.draining", 1 if self.draining else 0)

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def run(self) -> int:
        """Blocking entry point: serve until drained; returns exit code."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:  # second Ctrl-C during hard drain
            _LOG.warning("serve: interrupted before drain completed")
            return 1
        return 0

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._work_available = asyncio.Event()
        self._dispatch_enabled = asyncio.Event()
        self._dispatch_enabled.set()
        self._stopped = asyncio.Event()
        if self.install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self.loop.add_signal_handler(signum, self.begin_drain)
                except (NotImplementedError, RuntimeError):
                    pass
            if self.config.flight_path:
                try:
                    self.loop.add_signal_handler(
                        signal.SIGUSR1, self.flight_dump, "signal"
                    )
                except (NotImplementedError, RuntimeError):
                    pass
        # Figures evaluate through the warm engine via the experiment
        # context hook, exactly like ``figure --jobs``.
        from repro.experiments.context import set_engine

        set_engine(self.engine)
        await self._listen()
        self.recorder.start()
        if self.config.http_port is not None:
            self.http = TelemetryHTTPServer(
                self.config.http_host,
                self.config.http_port,
                metrics_text=self.prometheus_text,
                health_json=self.health_dict,
            ).start()
            self.http_address = self.http.address
        dispatcher = asyncio.create_task(self._dispatch_loop())
        _LOG.info(
            f"serving on {self.bound_address}",
            jobs=self.engine.jobs,
            backend=(
                self.engine.store.backend.name if self.engine.store else "none"
            ),
            slab_size=self.config.slab_size,
            quota=self.config.quota,
            http=self.http_address,
        )
        self.ready.set()
        try:
            await self._stopped.wait()
        finally:
            dispatcher.cancel()
            await asyncio.gather(dispatcher, return_exceptions=True)
            await self._shutdown_cleanup()

    async def _listen(self) -> None:
        family, target = protocol.parse_address(self.config.listen)
        if family == "unix":
            path = os.path.expanduser(target)
            if os.path.exists(path) and not self._socket_is_live(path):
                os.unlink(path)  # stale socket from a dead server
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=path, limit=protocol.MAX_LINE_BYTES
            )
            self.bound_address = f"unix:{path}"
        else:
            host, port = target
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=host,
                port=port,
                limit=protocol.MAX_LINE_BYTES,
            )
            bound = self._server.sockets[0].getsockname()
            self.bound_address = f"{bound[0]}:{bound[1]}"

    @staticmethod
    def _socket_is_live(path: str) -> bool:
        probe = socket_module.socket(socket_module.AF_UNIX)
        try:
            probe.settimeout(0.25)
            probe.connect(path)
            return True
        except OSError:
            return False
        finally:
            probe.close()

    async def _shutdown_cleanup(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Close lingering client connections so their handler tasks end on
        # EOF instead of being cancelled noisily at loop teardown.
        for writer in list(self._connections):
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        for _ in range(100):
            if not self._connections:
                break
            await asyncio.sleep(0.01)
        if self.bound_address and self.bound_address.startswith("unix:"):
            try:
                os.unlink(self.bound_address[len("unix:"):])
            except OSError:
                pass
        if self.config.flight_path:
            self.flight_dump("drain")
        self.recorder.stop()
        if self.http is not None:
            self.http.stop()
            self.http = None
        self.engine.write_summary()
        if self.engine.store is not None:
            self.engine.store.close()
        # The drain guarantees nothing is in flight; stop the warm workers.
        self.engine.shutdown()
        from repro.experiments.context import set_engine

        set_engine(None)
        self._dispatch_pool.shutdown(wait=False)
        self._prep_pool.shutdown(wait=False)
        _LOG.info(
            "serve: drained and stopped",
            jobs_completed=self.counters["jobs_completed"],
            points_coalesced=self.counters["points_coalesced"],
        )

    def begin_drain(self) -> None:
        """Stop admission; finish accepted jobs; exit when idle.

        Called from the SIGTERM handler or the ``shutdown`` op.  A second
        call hardens the drain: queued jobs are cancelled and only the
        slab already running completes.
        """
        if not self.draining:
            self.draining = True
            self._instant("serve.drain")
            self._count("serve.drains")
            _LOG.info(
                "serve: draining (finishing accepted jobs, refusing new ones)"
            )
        elif not self._drain_hard:
            self._drain_hard = True
            _LOG.warning("serve: hard drain (cancelling queued jobs)")
            for job in list(self._jobs.values()):
                if job.state in (QUEUED, RUNNING):
                    self._cancel_job(job)
        self._work_available.set()
        self._maybe_stop()

    def _active_jobs(self) -> int:
        return sum(
            1 for j in self._jobs.values() if j.state not in TERMINAL_STATES
        )

    def _maybe_stop(self) -> None:
        if (
            self.draining
            and self._active_jobs() == 0
            and self._scheduler.in_flight == 0
            and self._stopped is not None
        ):
            self._stopped.set()

    # -- test/bench hooks (thread-safe) --------------------------------- #

    def pause_dispatch(self) -> None:
        """Hold the dispatcher before its next slab (deterministic tests)."""
        self.loop.call_soon_threadsafe(self._dispatch_enabled.clear)

    def resume_dispatch(self) -> None:
        self.loop.call_soon_threadsafe(self._dispatch_enabled.set)

    # ------------------------------------------------------------------ #
    # connection handling                                                 #
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_seq += 1
        default_client = f"conn-{self._conn_seq}"
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError, asyncio.LimitOverrunError):
                    break  # peer gone, or a line beyond MAX_LINE_BYTES
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = protocol.decode_line(line)
                    op, seq = protocol.validate_request(message)
                except protocol.ProtocolError as exc:
                    await self._send(
                        writer, protocol.error(None, exc.code, str(exc))
                    )
                    continue
                try:
                    if op == "stream":
                        await self._op_stream(writer, seq, message)
                    else:
                        response = await self._handle_op(
                            op, seq, message, default_client
                        )
                        await self._send(writer, response)
                except protocol.ProtocolError as exc:
                    await self._send(
                        writer, protocol.error(seq, exc.code, str(exc))
                    )
                except ConnectionError:
                    break
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        writer.write(protocol.encode(message))
        await writer.drain()

    async def _handle_op(
        self,
        op: str,
        seq: Optional[int],
        message: Dict[str, Any],
        default_client: str,
    ) -> Dict[str, Any]:
        if op == "ping":
            return protocol.ok(
                seq, version=protocol.PROTOCOL_VERSION, draining=self.draining
            )
        if op == "stats":
            return protocol.ok(seq, stats=self.stats_dict())
        if op == "health":
            return protocol.ok(seq, health=self.health_dict())
        if op == "metrics":
            window = message.get("window")
            if window is not None and not isinstance(window, int):
                raise protocol.ProtocolError("window must be an integer")
            return protocol.ok(seq, metrics=self.telemetry_dict(window))
        if op == "trace":
            limit = message.get("limit")
            if limit is not None and not isinstance(limit, int):
                raise protocol.ProtocolError("limit must be an integer")
            return protocol.ok(seq, trace=self.ring_tracer.export(limit))
        if op == "submit":
            return await self._op_submit(seq, message, default_client)
        if op == "poll":
            return self._op_poll(seq, message)
        if op == "wait":
            return await self._op_wait(seq, message)
        if op == "cancel":
            return self._op_cancel(seq, message)
        if op == "shutdown":
            self.begin_drain()
            return protocol.ok(seq, draining=True)
        raise protocol.ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    def _job_or_error(self, message: Dict[str, Any]) -> Job:
        job_id = message.get("job")
        job = self._jobs.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            raise protocol.ProtocolError(
                f"unknown job {job_id!r}", code=protocol.E_UNKNOWN_JOB
            )
        return job

    # ------------------------------------------------------------------ #
    # ops                                                                 #
    # ------------------------------------------------------------------ #

    async def _op_submit(
        self, seq: Optional[int], message: Dict[str, Any], default_client: str
    ) -> Dict[str, Any]:
        if self.draining:
            return protocol.error(
                seq, protocol.E_DRAINING, "server is draining; not accepting jobs"
            )
        kind, params, priority_name = protocol.validate_submit(message)
        client = message.get("client") or default_client
        if not isinstance(client, str):
            raise protocol.ProtocolError("client must be a string")
        self._job_seq += 1
        job = Job(
            id=f"job-{self._job_seq:06d}",
            kind=kind,
            params=params,
            client=client,
            priority=protocol.PRIORITIES[priority_name],
            priority_name=priority_name,
        )
        try:
            if kind == "figure":
                self._submit_figure(job)
            elif kind == "explore":
                self._submit_explore(job)
            else:
                await self._submit_points(job)
        except KeyError as exc:
            return protocol.error(seq, protocol.E_BAD_REQUEST, str(exc.args[0]))
        except ValueError as exc:
            return protocol.error(seq, protocol.E_BAD_REQUEST, str(exc))
        self._jobs[job.id] = job
        self._done_events[job.id] = asyncio.Event()
        self.counters["jobs_submitted"] += 1
        self._count("serve.jobs_submitted")
        label = self._client_label(client)
        self._count(f"serve.client_jobs_submitted{{client={label}}}")
        self._count(
            f"serve.client_points_requested{{client={label}}}", job.total_points
        )
        self._instant("serve.submit", kind=kind, client=client, job=job.id)
        _LOG.info(
            "serve: job submitted",
            job=job.id,
            kind=kind,
            client=client,
            priority=job.priority_name,
            points=job.total_points,
            coalesced=job.coalesced,
        )
        if job.remaining == 0 and job.kind not in protocol.OPAQUE_KINDS:
            # Every point was already complete (all coalesced onto
            # finished work still in the table): finalize immediately.
            self._finalize_job(job)
        self._work_available.set()
        return protocol.ok(
            seq,
            job=job.id,
            state=job.state,
            total_points=job.total_points,
            coalesced_points=job.coalesced,
        )

    def _op_poll(self, seq: Optional[int], message: Dict[str, Any]) -> Dict[str, Any]:
        job = self._job_or_error(message)
        return protocol.ok(seq, **job.status_dict())

    async def _op_wait(
        self, seq: Optional[int], message: Dict[str, Any]
    ) -> Dict[str, Any]:
        job = self._job_or_error(message)
        timeout = message.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise protocol.ProtocolError("timeout must be a number")
        if job.state not in TERMINAL_STATES:
            try:
                await asyncio.wait_for(
                    self._done_events[job.id].wait(), timeout=timeout
                )
            except asyncio.TimeoutError:
                return protocol.error(
                    seq,
                    protocol.E_TIMEOUT,
                    f"job {job.id} still {job.state} after {timeout}s",
                )
        return protocol.ok(seq, **job.status_dict())

    async def _op_stream(
        self,
        writer: asyncio.StreamWriter,
        seq: Optional[int],
        message: Dict[str, Any],
    ) -> None:
        job = self._job_or_error(message)
        if job.state in TERMINAL_STATES:
            await self._send(writer, self._final_event(job, seq))
            return
        queue: asyncio.Queue = asyncio.Queue()
        self._streams.setdefault(job.id, []).append(queue)
        await self._send(
            writer,
            protocol.ok(
                seq,
                event="progress",
                job=job.id,
                state=job.state,
                done=job.done_points,
                total=job.total_points,
            ),
        )
        try:
            while True:
                event = await queue.get()
                event["seq"] = seq
                await self._send(writer, event)
                if event.get("final"):
                    break
        finally:
            subscribers = self._streams.get(job.id)
            if subscribers and queue in subscribers:
                subscribers.remove(queue)
                if not subscribers:
                    self._streams.pop(job.id, None)

    def _op_cancel(self, seq: Optional[int], message: Dict[str, Any]) -> Dict[str, Any]:
        job = self._job_or_error(message)
        if job.state in TERMINAL_STATES:
            return protocol.ok(seq, job=job.id, state=job.state)
        self._cancel_job(job)
        return protocol.ok(seq, job=job.id, state=job.state)

    # ------------------------------------------------------------------ #
    # job decomposition (coalescing happens here)                         #
    # ------------------------------------------------------------------ #

    def _grid_points(self, job: Job) -> List[Tuple[str, Tuple[str, ...], bool]]:
        """The (design, mix, smt) tuples behind a job, in evaluation order."""
        if job.kind == "point":
            design = job.params["design"]
            self.study.design(design)  # fail fast on unknown designs
            return [
                (design, tuple(job.params["mix"]), bool(job.params.get("smt", True)))
            ]
        designs = job.params["designs"]
        kind = job.params["kind"]
        counts = list(range(1, job.params["max_threads"] + 1))
        smt = bool(job.params.get("smt", True))
        per_count = {n: self.study.mixes(kind, n) for n in counts}
        points: List[Tuple[str, Tuple[str, ...], bool]] = []
        for name in designs:
            self.study.design(name)  # fail fast, same as study.prefetch
            for n in counts:
                for mix in per_count[n]:
                    points.append((name, tuple(mix), smt))
        return points

    async def _submit_points(self, job: Job) -> None:
        """Resolve a job's grid to work units and register its points.

        Key derivation (full-config hashing for potentially thousands of
        points) runs on the prep thread; registration — the coalescing
        step — runs back on the event loop, atomically with respect to
        other submits.
        """
        from repro.engine.tasks import WorkUnit

        points = self._grid_points(job)

        def build_units():
            units = []
            for name, mix, smt in points:
                unit = WorkUnit(
                    design=self.study.design(name),
                    mix=mix,
                    smt=smt,
                    reference_uncore=self.study.reference_uncore,
                )
                units.append((unit.content_key, unit))
            return units

        keyed_units = await self.loop.run_in_executor(self._prep_pool, build_units)
        if job.kind == "sweep":
            job.params["_grid_keys"] = self._sweep_grid_keys(job, keyed_units)
        fresh: List[Tuple[str, Any]] = []
        seen = set()
        for key, unit in keyed_units:
            if key in seen:
                continue
            seen.add(key)
            job.point_keys.append(key)
            self.counters["points_requested"] += 1
            self._count("serve.points_requested")
            state = self._points.get(key)
            if state is None:
                state = PointState(key=key, unit=unit)
                self._points[key] = state
                fresh.append((key, unit))
            else:
                # Coalesced: the point is already queued, running or
                # freshly completed under another job.
                job.coalesced += 1
                self.counters["points_coalesced"] += 1
                self._count("serve.points_coalesced")
            if not state.done:
                state.waiters.add(job.id)
                job.remaining += 1
            else:
                state.waiters.add(job.id)  # keep payload pinned for finalize
        for start in range(0, len(fresh), self.config.slab_size):
            piece = fresh[start : start + self.config.slab_size]
            self._slab_seq += 1
            slab = Slab(
                id=self._slab_seq,
                job_id=job.id,
                client=job.client,
                priority=job.priority,
                point_keys=tuple(key for key, _ in piece),
            )
            self._slabs[slab.id] = slab
            job.open_slabs.add(slab.id)
            self._scheduler.submit(slab)

    def _sweep_grid_keys(self, job: Job, keyed_units) -> Dict[str, Any]:
        """(design, thread count) -> content keys in mix order, for means."""
        grid: Dict[str, Dict[str, List[str]]] = {}
        index = 0
        designs = job.params["designs"]
        counts = list(range(1, job.params["max_threads"] + 1))
        kind = job.params["kind"]
        per_count = {n: self.study.mixes(kind, n) for n in counts}
        for name in designs:
            grid[name] = {}
            for n in counts:
                keys = []
                for _mix in per_count[n]:
                    keys.append(keyed_units[index][0])
                    index += 1
                grid[name][str(n)] = keys
        return grid

    def _submit_figure(self, job: Job) -> None:
        from repro.cli import _figure_registry

        registry = _figure_registry()
        figure_id = job.params["id"]
        if figure_id not in registry:
            raise ValueError(
                f"unknown experiment {figure_id!r}; try: {', '.join(registry)}"
            )
        self._submit_opaque(job, figure=dict(job.params))

    def _submit_explore(self, job: Job) -> None:
        from repro.explore import ExploreConfig

        params = dict(job.params)
        designs = params.get("designs")
        if designs is not None:
            params["designs"] = tuple(designs)
        try:
            ExploreConfig(**params)  # validate field names and values now
        except TypeError as exc:
            raise ValueError(f"bad explore params: {exc}") from None
        self._submit_opaque(job, explore=params)

    def _submit_opaque(self, job: Job, **task: Dict[str, Any]) -> None:
        """Queue a single-task slab (figure/explore) for the dispatcher."""
        self._slab_seq += 1
        slab = Slab(
            id=self._slab_seq,
            job_id=job.id,
            client=job.client,
            priority=job.priority,
            **task,
        )
        self._slabs[slab.id] = slab
        job.open_slabs.add(slab.id)
        job.remaining = 1
        self._scheduler.submit(slab)

    # ------------------------------------------------------------------ #
    # dispatch                                                            #
    # ------------------------------------------------------------------ #

    async def _dispatch_loop(self) -> None:
        while True:
            await self._work_available.wait()
            await self._dispatch_enabled.wait()
            slab = self._scheduler.next_slab()
            if slab is None:
                self._work_available.clear()
                self._maybe_stop()
                continue
            job = self._jobs.get(slab.job_id)
            if job is not None and job.state == QUEUED:
                job.state = RUNNING
                job.started_at = time.time()
                queue_wait = job.started_at - job.submitted_at
                self._observe_latency(
                    "serve.job_queue_wait_seconds", "queue_wait_seconds", queue_wait
                )
                _LOG.info(
                    "serve: job started",
                    job=job.id,
                    kind=job.kind,
                    client=job.client,
                    queue_wait_seconds=round(queue_wait, 6),
                )
            self.counters["slabs_dispatched"] += 1
            self._count("serve.slabs_dispatched")
            started = time.perf_counter()
            try:
                if slab.figure is not None:
                    outcome = await self.loop.run_in_executor(
                        self._dispatch_pool, self._render_figure, slab.figure
                    )
                    self._complete_opaque_slab(slab, {"tables": outcome}, None)
                elif slab.explore is not None:
                    outcome = await self.loop.run_in_executor(
                        self._dispatch_pool, self._run_explore, slab.explore
                    )
                    self._complete_opaque_slab(slab, {"explore": outcome}, None)
                else:
                    units = [
                        self._points[key].unit for key in slab.point_keys
                    ]
                    results = await self.loop.run_in_executor(
                        self._dispatch_pool, self._evaluate_units, units
                    )
                    self._complete_point_slab(slab, results)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # dispatcher must never die
                _LOG.error(
                    f"serve: slab {slab.id} failed: {type(exc).__name__}: {exc}"
                )
                if slab.opaque:
                    self._complete_opaque_slab(
                        slab, None, f"{type(exc).__name__}: {exc}"
                    )
                else:
                    self._fail_point_slab(slab, f"{type(exc).__name__}: {exc}")
            seconds = time.perf_counter() - started
            self._observe_latency("serve.slab_seconds", "slab_seconds", seconds)
            for promoted in self._scheduler.complete(slab):
                del promoted  # admission only; dispatch picks them up
            self._slabs.pop(slab.id, None)
            emit_started = time.perf_counter()
            self._emit_slab_events(slab, seconds)
            self._observe_latency(
                "serve.stream_emit_seconds",
                "stream_emit_seconds",
                time.perf_counter() - emit_started,
            )
            self._refresh_gauges()
            self._maybe_stop()

    def _evaluate_units(self, units) -> List[Any]:
        """Dispatcher-thread body: one engine call for one slab."""
        with self._span("serve.slab", units=len(units)):
            return self.engine.evaluate(units, on_failure="return")

    def _render_figure(self, params: Dict[str, Any]) -> List[Dict[str, str]]:
        """Dispatcher-thread body: regenerate one figure through the engine."""
        from repro.cli import _figure_registry

        with self._span("serve.figure", figure=params["id"]):
            tables = _figure_registry()[params["id"]]()
        return [
            {"formatted": t.formatted(), "json": t.to_json()} for t in tables
        ]

    def _run_explore(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatcher-thread body: run one adaptive exploration.

        Runs against the server's study, so exploration points land in
        the same memo (and persistent store) that sweeps and point
        queries warm — repeated explorations amortize.  Designs outside
        the study's initial set (e.g. the Section 8.1 alternatives) are
        registered on demand.
        """
        from repro.core.designs import get_design
        from repro.explore import ExploreConfig, run_explore

        config_params = dict(params)
        designs = config_params.get("designs")
        if designs is not None:
            config_params["designs"] = tuple(designs)
        config = ExploreConfig(**config_params)
        for name in config.designs:
            if name not in self.study.designs:
                self.study.add_design(get_design(name))
        with self._span("serve.explore", scenario=config.scenario):
            return run_explore(config, study=self.study)

    # ------------------------------------------------------------------ #
    # completion                                                          #
    # ------------------------------------------------------------------ #

    def _complete_point_slab(self, slab: Slab, results: List[Any]) -> None:
        from repro.engine.tasks import UnitFailure, payload_from_result

        for key, value in zip(slab.point_keys, results):
            state = self._points.get(key)
            if state is None or state.done:
                continue
            state.done = True
            if isinstance(value, UnitFailure):
                state.error = value.as_dict()
            else:
                state.payload = payload_from_result(value)
            self._resolve_point(state)

    def _fail_point_slab(self, slab: Slab, message: str) -> None:
        for key in slab.point_keys:
            state = self._points.get(key)
            if state is None or state.done:
                continue
            state.done = True
            state.error = {"error_type": "DispatchError", "message": message}
            self._resolve_point(state)

    def _resolve_point(self, state: PointState) -> None:
        for job_id in list(state.waiters):
            job = self._jobs.get(job_id)
            if job is None or job.state in TERMINAL_STATES:
                state.waiters.discard(job_id)
                continue
            job.remaining -= 1
            if job.remaining == 0:
                self._finalize_job(job)
        if not state.waiters:
            self._points.pop(state.key, None)

    def _complete_opaque_slab(
        self, slab: Slab, result: Optional[Dict[str, Any]], error: Optional[str]
    ) -> None:
        job = self._jobs.get(slab.job_id)
        if job is None or job.state in TERMINAL_STATES:
            return
        job.remaining = 0
        if error is not None:
            job.error = error
        else:
            job.result = result
        self._finalize_job(job)

    def _finalize_job(self, job: Job) -> None:
        """Assemble the job result and mark it terminal."""
        if job.state in TERMINAL_STATES:
            return
        if job.kind not in protocol.OPAQUE_KINDS:
            errors = []
            payloads: Dict[str, Dict[str, Any]] = {}
            for key in job.point_keys:
                state = self._points.get(key)
                if state is None:
                    errors.append({"message": f"point {key[:12]} lost"})
                elif state.error is not None:
                    errors.append(state.error)
                else:
                    payloads[key] = state.payload
            if errors:
                first = errors[0]
                job.error = (
                    f"{len(errors)} point(s) failed; first: "
                    f"{first.get('error_type', '?')}: {first.get('message', '?')}"
                )
            else:
                job.result = self._assemble_result(job, payloads)
        job.finished_at = time.time()
        job.state = FAILED if job.error is not None else DONE
        counter = "jobs_failed" if job.error is not None else "jobs_completed"
        self.counters[counter] += 1
        self._count(f"serve.{counter}")
        label = self._client_label(job.client)
        self._count(f"serve.client_{counter}{{client={label}}}")
        if job.state == DONE:
            self._count("serve.points_completed", job.total_points)
            self._count(
                f"serve.client_points_completed{{client={label}}}",
                job.total_points,
            )
        e2e = job.finished_at - job.submitted_at
        self._observe_latency("serve.job_e2e_seconds", "e2e_seconds", e2e)
        if job.started_at is not None:
            self._observe_latency(
                "serve.job_run_seconds",
                "run_seconds",
                job.finished_at - job.started_at,
            )
        self._instant("serve.finish", job=job.id, state=job.state)
        _LOG.info(
            "serve: job finished",
            job=job.id,
            kind=job.kind,
            client=job.client,
            state=job.state,
            points=job.total_points,
            seconds=round(e2e, 6),
        )
        self._record_finished(job)
        self._release_points(job)
        event = self._done_events.get(job.id)
        if event is not None:
            event.set()
        self._push_stream_event(job, self._final_event(job, None))
        self._maybe_stop()

    def _assemble_result(
        self, job: Job, payloads: Dict[str, Dict[str, Any]]
    ) -> Dict[str, Any]:
        if job.kind == "point":
            return {"point": payloads[job.point_keys[0]]}
        # Sweep: reduce point STPs to the per-(design, count) harmonic
        # means through the same helper the local study uses, in the same
        # order, so the resulting floats are bit-identical.
        from repro.core.metrics import harmonic_mean

        grid_keys = job.params["_grid_keys"]
        mean_stp: Dict[str, Dict[str, float]] = {}
        for design, by_count in grid_keys.items():
            mean_stp[design] = {}
            for count, keys in by_count.items():
                mean_stp[design][count] = harmonic_mean(
                    [payloads[key]["stp"] for key in keys]
                )
        return {
            "designs": job.params["designs"],
            "kind": job.params["kind"],
            "max_threads": job.params["max_threads"],
            "smt": bool(job.params.get("smt", True)),
            "mean_stp": mean_stp,
        }

    def _record_finished(self, job: Job) -> None:
        """Append to the terminal-job history, evicting beyond the cap.

        The daemon runs indefinitely; without eviction ``_jobs`` and
        ``_done_events`` grow without bound.  Only terminal jobs ever
        enter ``finished_order`` and jobs never leave a terminal state,
        so evicting the oldest entries is safe — their final stream
        event was already delivered, and a later poll/wait for an
        evicted id gets a structured ``unknown job`` error.
        """
        self.finished_order.append(job.id)
        limit = self.config.max_finished_jobs
        while len(self.finished_order) > limit > 0:
            old_id = self.finished_order.pop(0)
            self._jobs.pop(old_id, None)
            self._done_events.pop(old_id, None)
            self._streams.pop(old_id, None)

    def _release_points(self, job: Job) -> None:
        for key in job.point_keys:
            state = self._points.get(key)
            if state is None:
                continue
            state.waiters.discard(job.id)
            if state.done and not state.waiters:
                self._points.pop(key, None)

    def _cancel_job(self, job: Job) -> None:
        job.state = CANCELLED
        job.finished_at = time.time()
        self.counters["jobs_cancelled"] += 1
        self._count("serve.jobs_cancelled")
        self._instant("serve.cancel", job=job.id)
        _LOG.info(
            "serve: job cancelled",
            job=job.id,
            kind=job.kind,
            client=job.client,
            seconds=round(job.finished_at - job.submitted_at, 6),
        )
        self._record_finished(job)

        def droppable(slab: Slab) -> bool:
            if slab.job_id != job.id:
                return False
            if slab.opaque:
                return True
            # Keep the slab if any of its points still feeds another job.
            for key in slab.point_keys:
                state = self._points.get(key)
                if state is not None and state.waiters - {job.id}:
                    return False
            return True

        for slab in self._scheduler.discard_queued(droppable):
            job.open_slabs.discard(slab.id)
            self._slabs.pop(slab.id, None)
            for key in slab.point_keys:
                state = self._points.get(key)
                if state is not None and not state.done:
                    self._points.pop(key, None)
        self._release_points(job)
        event = self._done_events.get(job.id)
        if event is not None:
            event.set()
        self._push_stream_event(job, self._final_event(job, None))
        self._maybe_stop()

    # ------------------------------------------------------------------ #
    # streaming                                                           #
    # ------------------------------------------------------------------ #

    def _emit_slab_events(self, slab: Slab, seconds: float) -> None:
        """Per-slab progress events for every job that shares its points."""
        touched = set()
        if not slab.opaque:
            for key in slab.point_keys:
                state = self._points.get(key)
                if state is not None:
                    touched.update(state.waiters)
        touched.add(slab.job_id)
        for job_id in touched:
            job = self._jobs.get(job_id)
            if job is None or job.state in TERMINAL_STATES:
                continue
            job.open_slabs.discard(slab.id)
            self._push_stream_event(
                job,
                protocol.ok(
                    None,
                    event="slab",
                    job=job.id,
                    state=job.state,
                    done=job.done_points,
                    total=job.total_points,
                    slab_seconds=round(seconds, 6),
                ),
            )

    def _final_event(self, job: Job, seq: Optional[int]) -> Dict[str, Any]:
        event_name = {DONE: "done", FAILED: "failed", CANCELLED: "cancelled"}[
            job.state
        ]
        event = protocol.ok(seq, event=event_name, final=True, **job.status_dict())
        return event

    def _push_stream_event(self, job: Job, event: Dict[str, Any]) -> None:
        for queue in self._streams.get(job.id, []):
            queue.put_nowait(dict(event))

    # ------------------------------------------------------------------ #
    # stats                                                               #
    # ------------------------------------------------------------------ #

    def stats_dict(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        self._refresh_gauges()
        out = {
            "version": protocol.PROTOCOL_VERSION,
            "address": self.bound_address,
            "http_address": self.http_address,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "draining": self.draining,
            "jobs": states,
            "counters": dict(self.counters),
            "queue": self._scheduler.queue_dict(),
            "engine": self.engine.stats.as_dict(),
            "store": (
                self.engine.store.status_dict()
                if self.engine.store is not None
                else None
            ),
            "metrics": self.metrics.snapshot(),
        }
        return out

    def health_dict(self) -> Dict[str, Any]:
        """The ``health`` op / ``/healthz`` body: liveness, readiness,
        drain state and SLO percentiles over the recent window.

        Also runs on the HTTP thread — every read here is a plain
        attribute or small-dict read, safe beside the event loop.
        """
        states: Dict[str, int] = {}
        for job in list(self._jobs.values()):
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "live": True,
            "ready": not self.draining,
            "draining": self.draining,
            "drain_hard": self._drain_hard,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "jobs": states,
            "active_jobs": self._active_jobs(),
            "queue": self._scheduler.queue_dict(),
            "slo": {
                name: self.slo[name].snapshot() for name in sorted(self.slo)
            },
            "trace_ring": {
                "events": len(self.ring_tracer.events),
                "cap": self.ring_tracer.cap,
                "dropped": self.ring_tracer.dropped,
            },
            "http_address": self.http_address,
        }

    def telemetry_dict(self, window: Optional[int] = None) -> Dict[str, Any]:
        """The ``metrics`` op body: registry snapshot + recent time series."""
        self._refresh_gauges()
        return {
            "snapshot": self.metrics.snapshot(),
            "series": self.recorder.series(window),
            "record_interval": self.recorder.interval,
            "record_window": self.recorder.capacity,
            "sample_errors": self.recorder.sample_errors,
        }

    def prometheus_text(self) -> str:
        """The ``/metrics`` exposition body (runs on the HTTP thread)."""
        try:
            self._refresh_gauges()
            snapshot = self.metrics.snapshot()
        except RuntimeError:  # tables resized mid-read; expose last-good-ish
            snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
        return prometheus_text(
            snapshot,
            extra_gauges={
                "serve.up": 1,
                "serve.ready": 0 if self.draining else 1,
            },
        )

    def flight_dump(self, reason: str = "manual") -> Optional[Dict[str, Any]]:
        """Write the flight record (last spans + time series + metrics)."""
        path = self.config.flight_path
        if not path:
            return None
        self.recorder.sample()
        payload = write_flight_record(
            path,
            tracer=self.ring_tracer,
            recorder=self.recorder,
            registry=self.metrics,
            health=self.health_dict(),
            reason=reason,
        )
        _LOG.info(
            "serve: flight record written",
            path=path,
            reason=reason,
            events=len(self.ring_tracer.events),
            samples=len(self.recorder),
        )
        return payload


class ServerHandle:
    """A server running on a background thread (tests and benchmarks).

    The daemon normally owns the process (``SweepServer.run``); tests and
    the bench harness instead need it beside them.  The handle runs
    ``_main`` on a private thread, waits for the listening socket, and
    exposes thread-safe pause/resume/stop plus direct access to the
    server object for white-box assertions.
    """

    def __init__(self, config: ServeConfig):
        self.server = SweepServer(config, install_signals=False)
        self._thread = threading.Thread(
            target=self.server.run, name="serve-thread", daemon=True
        )

    def __enter__(self) -> "ServerHandle":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self, timeout: float = 30.0) -> "ServerHandle":
        self._thread.start()
        if not self.server.ready.wait(timeout):
            raise RuntimeError("serve thread did not come up in time")
        return self

    @property
    def address(self) -> str:
        return self.server.bound_address

    def pause(self) -> None:
        self.server.pause_dispatch()

    def resume(self) -> None:
        self.server.resume_dispatch()

    def stop(self, timeout: float = 60.0) -> None:
        if self._thread.is_alive():
            try:
                self.server.loop.call_soon_threadsafe(self.server.begin_drain)
            except RuntimeError:
                pass  # loop already closed (server drained on its own)
            self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - watchdog path
            raise RuntimeError("serve thread did not drain in time")

"""Bench: Figure 10 — datacenter and mirrored thread-count distributions."""

import pytest

from repro.experiments import fig10_datacenter

pytestmark = pytest.mark.slow


def test_fig10a_distribution(record_table):
    table = record_table(fig10_datacenter.run_distribution, "fig10a")
    assert len(table.rows) == 24


def test_fig10b_averages(record_table):
    table = record_table(fig10_datacenter.run, "fig10b")
    vals = {row["design"]: row["datacenter SMT"] for row in table.rows}
    assert max(vals, key=vals.get) == "4B"

"""Bench: Figure 15 — power/energy vs performance Pareto analysis."""

import pytest

from repro.experiments import fig15_pareto

pytestmark = pytest.mark.slow


def test_fig15(record_table):
    table = record_table(fig15_pareto.run, "fig15")
    vals = {r["design"]: r for r in table.rows}
    assert vals["4B"]["throughput"] == max(r["throughput"] for r in table.rows)
    # Finding 9: nothing beats 4B's EDP by more than ~10 %.
    best_edp = min(r["EDP"] for r in table.rows)
    assert best_edp > 0.9 * vals["4B"]["EDP"]

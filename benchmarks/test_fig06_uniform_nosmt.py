"""Bench: Figure 6 — uniform distribution, no SMT anywhere."""

import pytest

from repro.experiments import fig06_fig07_fig08_uniform as uniform_figs

pytestmark = pytest.mark.slow


def test_fig06(record_table):
    table = record_table(lambda: uniform_figs.run("none"), "fig06")
    for kind in ("homogeneous", "heterogeneous"):
        vals = {row["design"]: row[kind] for row in table.rows}
        assert max(vals, key=vals.get) not in ("4B", "8m", "20s")

"""Bench: Figure 8 — uniform distribution, SMT everywhere."""

import pytest

from repro.experiments import fig06_fig07_fig08_uniform as uniform_figs

pytestmark = pytest.mark.slow


def test_fig08(record_table):
    table = record_table(lambda: uniform_figs.run("all"), "fig08")
    for kind in ("homogeneous", "heterogeneous"):
        vals = {row["design"]: row[kind] for row in table.rows}
        assert vals["4B"] >= 0.97 * max(vals.values())

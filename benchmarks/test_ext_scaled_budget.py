"""Bench extension: the study at a doubled hardware budget (8B / 48 threads)."""

import pytest

from repro.experiments import ext_scaled_budget

pytestmark = pytest.mark.slow


def test_ext_scaled_budget(record_table):
    table = record_table(
        lambda: ext_scaled_budget.run(max_threads=48, mixes_per_count=6),
        "ext_scaled_budget",
    )
    vals_smt = {r["design"]: r["SMT"] for r in table.rows}
    assert vals_smt["8B"] >= 0.97 * max(vals_smt.values())

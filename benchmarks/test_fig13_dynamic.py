"""Bench: Figure 13 — 4B with SMT versus the ideal dynamic multi-core."""

import pytest

from repro.experiments import fig13_dynamic

pytestmark = pytest.mark.slow


def test_fig13a_homogeneous(record_table):
    table = record_table(
        lambda: fig13_dynamic.run("homogeneous"), "fig13a"
    )
    assert len(table.rows) == 24


def test_fig13b_heterogeneous(record_table):
    table = record_table(
        lambda: fig13_dynamic.run("heterogeneous"), "fig13b"
    )
    mean_4b = sum(r["4B (SMT)"] for r in table.rows) / len(table.rows)
    mean_dyn = sum(r["dynamic w/o SMT"] for r in table.rows) / len(table.rows)
    assert mean_4b >= mean_dyn * 0.97  # Finding 8

"""Bench: Figure 12 — per-benchmark PARSEC speedups."""

from repro.experiments import fig11_fig12_parsec


def test_fig12a_roi(record_table):
    table = record_table(
        lambda: fig11_fig12_parsec.run_per_benchmark("roi", smt=True), "fig12a"
    )
    assert len(table.rows) == 8


def test_fig12b_whole(record_table):
    table = record_table(
        lambda: fig11_fig12_parsec.run_per_benchmark("whole", smt=True),
        "fig12b",
    )
    bests = table.column("best")
    # Whole-program: a big-core design optimal for most benchmarks.
    assert sum(b in ("4B", "1B6m", "1B15s") for b in bests) >= 5

"""Bench: Figure 4 — tonto (compute-bound) and libquantum (bandwidth-bound)."""

from repro.experiments import fig04_tonto_libquantum


def test_fig04a_tonto(record_table):
    table = record_table(
        lambda: fig04_tonto_libquantum.run("tonto"), "fig04a"
    )
    at24 = table.row_by("threads", 24)
    assert at24["20s"] > at24["4B"]  # many-core wins the compute class


def test_fig04b_libquantum(record_table):
    table = record_table(
        lambda: fig04_tonto_libquantum.run("libquantum"), "fig04b"
    )
    at24 = table.row_by("threads", 24)
    spread = max(at24[d] for d in at24 if d != "threads") / min(
        at24[d] for d in at24 if d != "threads"
    )
    assert spread < 1.15  # bandwidth saturation flattens the design space

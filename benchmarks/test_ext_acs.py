"""Bench extension: Accelerating Critical Sections vs SMT flexibility."""

import pytest

from repro.experiments import ext_acs

pytestmark = pytest.mark.slow


def test_ext_acs(record_table):
    table = record_table(ext_acs.run, "ext_acs")
    for row in table.rows:
        if row["design"] != "4B":
            assert row["ACS"] >= row["pinned"]  # ACS helps hetero designs
    four_b = table.row_by("design", "4B")
    best_hetero_acs = max(
        row["ACS"] for row in table.rows if row["design"] != "4B"
    )
    # The paper's Section 9 point: 4B gets the benefit without migrating.
    assert four_b["pinned"] >= best_hetero_acs * 0.95

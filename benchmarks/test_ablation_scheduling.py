"""Bench ablation: co-scheduling quality (stacked vs heuristic vs optimized)."""

from repro.experiments import ablations


def test_ablation_scheduling(record_table):
    table = record_table(
        lambda: ablations.run_scheduling(n_threads=8, num_mixes=6),
        "ablation_scheduling",
    )
    for row in table.rows:
        assert row["optimized"] >= row["stacked"] - 1e-9

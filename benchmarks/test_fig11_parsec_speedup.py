"""Bench: Figure 11 — average PARSEC speedups (ROI and whole program)."""

from repro.experiments import fig11_fig12_parsec


def test_fig11a_roi(record_table):
    table = record_table(
        lambda: fig11_fig12_parsec.run_average("roi"), "fig11a"
    )
    vals_no = {r["design"]: r["without SMT"] for r in table.rows}
    assert max(vals_no, key=vals_no.get) != "4B"  # 8m-class optimum w/o SMT


def test_fig11b_whole(record_table):
    table = record_table(
        lambda: fig11_fig12_parsec.run_average("whole"), "fig11b"
    )
    vals_smt = {r["design"]: r["with SMT"] for r in table.rows}
    assert max(vals_smt, key=vals_smt.get) == "4B"

"""Bench ablation: static vs shared ROB partitioning under SMT."""

from repro.experiments import ablations


def test_ablation_rob_partition(record_table):
    table = record_table(ablations.run_rob_partitioning, "ablation_rob")
    assert len(table.rows) >= 3

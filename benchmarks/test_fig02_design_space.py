"""Bench: Figure 2 — the nine power-equivalent designs."""

from repro.experiments import fig02_design_space


def test_fig02(record_table):
    table = record_table(fig02_design_space.run, "fig02")
    assert len(table.rows) == 9

"""Bench extension: hardware prefetchers on the cycle-level tier."""

import pytest

from repro.experiments import ext_prefetch

pytestmark = pytest.mark.slow


def test_ext_prefetch(record_table):
    table = record_table(ext_prefetch.run, "ext_prefetch")
    for row in table.rows:
        # Prefetching never hurts these workloads, and next-line coverage
        # of the sequential compulsory stream is large.
        assert row["nextline"] >= row["none"]
        assert row["stride"] >= row["none"] * 0.95

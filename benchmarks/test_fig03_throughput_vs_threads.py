"""Bench: Figure 3 — STP vs thread count for the nine designs (both panels)."""

from repro.experiments import fig03_throughput_curves


def test_fig03a_homogeneous(record_table):
    table = record_table(
        lambda: fig03_throughput_curves.run("homogeneous"), "fig03a"
    )
    assert len(table.rows) == 24


def test_fig03b_heterogeneous(record_table):
    table = record_table(
        lambda: fig03_throughput_curves.run("heterogeneous"), "fig03b"
    )
    at24 = table.row_by("threads", 24)
    at1 = table.row_by("threads", 1)
    assert at1["4B"] >= at1["20s"]
    assert at24["4B"] > 0

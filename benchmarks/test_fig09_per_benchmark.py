"""Bench: Figure 9 — per-benchmark uniform-distribution averages."""

import pytest

from repro.experiments import fig09_per_benchmark

pytestmark = pytest.mark.slow


def test_fig09(record_table):
    table = record_table(fig09_per_benchmark.run, "fig09")
    assert len(table.rows) == 12

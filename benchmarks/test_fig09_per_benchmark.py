"""Bench: Figure 9 — per-benchmark uniform-distribution averages."""

from repro.experiments import fig09_per_benchmark


def test_fig09(record_table):
    table = record_table(fig09_per_benchmark.run, "fig09")
    assert len(table.rows) == 12

"""Bench: Figure 17 — the study at 16 GB/s memory bandwidth."""

from repro.experiments import fig17_bandwidth


def test_fig17_heterogeneous(record_table):
    table = record_table(
        lambda: fig17_bandwidth.run("heterogeneous"), "fig17_hetero"
    )
    vals = {r["design"]: r["STP @16GB/s"] for r in table.rows}
    assert vals["4B"] >= 0.97 * max(vals.values())  # Finding 11


def test_fig17_homogeneous(record_table):
    table = record_table(
        lambda: fig17_bandwidth.run("homogeneous"), "fig17_homog"
    )
    for row in table.rows:
        assert row["STP @16GB/s"] >= row["STP @8GB/s"] * 0.99

"""Bench ablation: demand-proportional vs even LLC partitioning."""

from repro.experiments import ablations


def test_ablation_llc_sharing(record_table):
    table = record_table(ablations.run_llc_sharing, "ablation_llc")
    assert len(table.rows) >= 3

"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's tables/figures through the
experiment drivers, records the rendered table under
``benchmarks/results/`` and prints it (visible with ``pytest -s``), then
times the driver with pytest-benchmark.  Drivers share the process-wide
memoized study context, so the timed call measures the (cached) figure
assembly; the first benchmark in a session pays the grid evaluation.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def record_table(benchmark):
    """Run an experiment driver under pytest-benchmark and persist its table.

    Usage: ``table = record_table(driver_callable, "fig03a")``.
    """

    def _run(driver, slug, rounds: int = 1):
        table = benchmark.pedantic(driver, rounds=rounds, iterations=1)
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.formatted()
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        print()
        print(text)
        return table

    return _run

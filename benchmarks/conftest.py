"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's tables/figures through the
experiment drivers, records the rendered table under
``benchmarks/results/`` and prints it (visible with ``pytest -s``), then
times the driver with pytest-benchmark.

All drivers share one evaluation engine for the session (installed into
``repro.experiments.context``), so identical grid points are computed once
and every later figure serves them from the engine's content-addressed
store instead of recomputing.  Knobs (environment variables):

* ``REPRO_CACHE_DIR`` — persistent store location; by default the store
  lives in a per-session temp dir, so benchmark timings stay cold-start
  reproducible while still deduplicating within the session;
* ``REPRO_BENCH_JOBS`` — worker processes for grid evaluation (default 1,
  keeping the timed figure assembly serial and comparable).
"""

import os
import pathlib

import pytest

from repro.engine import Engine, ResultStore
from repro.experiments import context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def shared_engine(tmp_path_factory):
    """One engine + result store behind every figure driver in the session."""
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or tmp_path_factory.mktemp(
        "engine-cache"
    )
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    engine = Engine(jobs=jobs, store=ResultStore(cache_dir))
    context.set_engine(engine)
    yield engine
    engine.write_summary()
    context.set_engine(None)


@pytest.fixture()
def record_table(benchmark):
    """Run an experiment driver under pytest-benchmark and persist its table.

    Usage: ``table = record_table(driver_callable, "fig03a")``.
    """

    def _run(driver, slug, rounds: int = 1):
        table = benchmark.pedantic(driver, rounds=rounds, iterations=1)
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.formatted()
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        print()
        print(text)
        return table

    return _run

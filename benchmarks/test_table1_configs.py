"""Bench: Table 1 — core configurations."""

from repro.experiments import table1_configs


def test_table1(record_table):
    table = record_table(table1_configs.run, "table1")
    assert len(table.rows) == 9

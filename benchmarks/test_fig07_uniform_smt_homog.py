"""Bench: Figure 7 — uniform distribution, SMT in homogeneous designs only."""

import pytest

from repro.experiments import fig06_fig07_fig08_uniform as uniform_figs

pytestmark = pytest.mark.slow


def test_fig07(record_table):
    table = record_table(
        lambda: uniform_figs.run("homogeneous-only"), "fig07"
    )
    for kind in ("homogeneous", "heterogeneous"):
        vals = {row["design"]: row[kind] for row in table.rows}
        assert max(vals, key=vals.get) == "4B"

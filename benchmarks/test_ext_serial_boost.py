"""Bench extension: EPI-style serial-phase frequency boosting."""

import pytest

from repro.experiments import ext_serial_boost

pytestmark = pytest.mark.slow


def test_ext_serial_boost(record_table):
    table = record_table(ext_serial_boost.run, "ext_serial_boost")
    for row in table.rows:
        assert row["boosted"] >= row["baseline"]  # boosting never hurts
    vals = {row["design"]: row["boosted"] for row in table.rows}
    assert max(vals, key=vals.get) == "4B"  # ranking unchanged
"""Bench: Figure 16 — larger-cache / higher-frequency alternative designs."""

import pytest

from repro.experiments import fig16_alternatives

pytestmark = pytest.mark.slow


def test_fig16(record_table):
    table = record_table(fig16_alternatives.run, "fig16")
    vals = {r["design"]: r["mean speedup"] for r in table.rows}
    assert max(vals, key=vals.get) == "4B"  # Finding 10

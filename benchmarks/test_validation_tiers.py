"""Bench: cross-validation of the interval tier against the cycle-level tier.

Not a paper figure, but the reproduction's trust anchor: it times a full
cycle-level + interval sweep over the benchmark suite and reports the
per-benchmark IPC agreement.
"""

import pytest

import pathlib

from repro.analysis.validation import cross_validate
from repro.microarch.config import BIG
from repro.workloads.spec import all_profiles

pytestmark = pytest.mark.slow

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_validation_tiers(benchmark):
    cv = benchmark.pedantic(
        lambda: cross_validate(all_profiles(), BIG, instructions=15_000),
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [f"interval-vs-cycle validation on the {cv.core_name} core"]
    for name in sorted(cv.interval_ipc):
        lines.append(
            f"  {name:12s} interval={cv.interval_ipc[name]:.2f} "
            f"cycle={cv.cycle_ipc[name]:.2f} ratio={cv.ratios[name]:.2f}"
        )
    lines.append(f"rank correlation: {cv.rank_correlation:.3f}")
    text = "\n".join(lines)
    (RESULTS_DIR / "validation.txt").write_text(text + "\n")
    print()
    print(text)
    assert cv.rank_correlation > 0.8

"""Bench: Figure 1 — active-thread distribution of PARSEC on 20 cores."""

from repro.experiments import fig01_parsec_threads


def test_fig01(record_table):
    table = record_table(fig01_parsec_threads.run, "fig01")
    assert len(table.rows) == 8
    # Headline statistic: ~half the time at 20 threads on average.
    avg_at_20 = sum(row["20"] for row in table.rows) / len(table.rows)
    assert 0.25 < avg_at_20 < 0.7

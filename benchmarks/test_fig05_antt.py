"""Bench: Figure 5 — ANTT vs thread count."""

from repro.experiments import fig05_antt


def test_fig05(record_table):
    table = record_table(fig05_antt.run, "fig05")
    at1 = table.row_by("threads", 1)
    assert min(at1, key=lambda k: at1[k] if k != "threads" else 99) == "4B"

"""Bench: the paper's eleven findings, evaluated end to end."""

import pytest

import pathlib

from repro.experiments import findings

pytestmark = pytest.mark.slow

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_findings(benchmark):
    results = benchmark.pedantic(findings.evaluate_all, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = []
    for f in results:
        status = "PASS" if f.holds else "FAIL"
        lines.append(f"Finding {f.number:2d} [{status}] {f.claim}")
        lines.append(f"    {f.evidence}")
    text = "\n".join(lines)
    (RESULTS_DIR / "findings.txt").write_text(text + "\n")
    print()
    print(text)
    assert all(f.holds for f in results)

"""Bench: Figure 14 — power vs thread count with power gating."""

from repro.experiments import fig14_power


def test_fig14(record_table):
    table = record_table(fig14_power.run, "fig14")
    at24 = table.row_by("threads", 24)
    assert 40.0 < at24["4B"] < 50.0  # paper: ~46 W
    at1 = table.row_by("threads", 1)
    assert at1["4B"] > at1["8m"] > at1["20s"]  # 17.3 / 13.5 / 9.8 W ordering

"""Bench ablation: round-robin vs ICOUNT SMT fetch."""

from repro.experiments import ablations


def test_ablation_fetch_policy(record_table):
    table = record_table(ablations.run_fetch_policy, "ablation_fetch")
    for row in table.rows:
        # With statically partitioned windows, policies land within 2 %.
        assert abs(row["ICOUNT stp"] / row["RR stp"] - 1) < 0.02
